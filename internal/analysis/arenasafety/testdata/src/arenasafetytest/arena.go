package arenasafetytest

// Arena mimics bitset.Arena's shape: structural detection keys off the
// Mark/Release method pair, not the package of origin.
type Arena struct {
	slab []uint64
	used int
}

func (a *Arena) Mark() int             { return a.used }
func (a *Arena) Release(m int)         { a.used = m }
func (a *Arena) Get() []uint64         { return a.slab }
func (a *Arena) GetUnzeroed() []uint64 { return a.slab }

// Set mimics the bitset kernel surface.
type Set []uint64

func (s Set) CopyFrom(o Set)            {}
func (s Set) AndIntoCount(a, b Set) int { return 0 }
func (s Set) Count() int                { return 0 }

type holder struct {
	arena *Arena
	row   []uint64
	buf   []uint64
}

// good follows the full discipline: mark, overwrite-before-read, release
// before every return.
func (h *holder) good(n int) int {
	m := h.arena.Mark()
	tmp := h.arena.GetUnzeroed()
	copy(tmp, h.row)
	if n < 0 {
		h.arena.Release(m)
		return 0
	}
	total := len(tmp)
	h.arena.Release(m)
	return total
}

// goodDefer releases via defer, which covers every exit path.
func (h *holder) goodDefer() int {
	m := h.arena.Mark()
	defer h.arena.Release(m)
	tmp := h.arena.Get()
	return len(tmp)
}

// goodSwap temporarily swings a scratch field at arena memory and declares
// it; the directive documents that the store is reverted before release.
func (h *holder) goodSwap() {
	m := h.arena.Mark()
	saved := h.buf
	h.buf = h.arena.Get() //hbbmc:allowescape restored two lines down
	h.buf = saved
	h.arena.Release(m)
}

// preMarkGet obtains persistent rows before any mark; those are
// session-lifetime handouts, not window-scoped scratch.
func (h *holder) preMarkGet() {
	h.row = h.arena.Get()
}

func (h *holder) leakField() {
	m := h.arena.Mark()
	h.row = h.arena.Get() // want `arena slice .* escapes its mark/release window`
	h.arena.Release(m)
}

func (h *holder) leakReturn() []uint64 {
	m := h.arena.Mark()
	tmp := h.arena.Get()
	h.arena.Release(m)
	return tmp // want `arena slice tmp returned past its mark/release window`
}

func (h *holder) earlyReturn(n int) int {
	m := h.arena.Mark()
	tmp := h.arena.Get()
	if n < 0 {
		return 0 // want `return without releasing h.arena`
	}
	h.arena.Release(m)
	return len(tmp)
}

func (h *holder) neverReleased() { // no release anywhere after the mark
	m := h.arena.Mark() // want `h.arena is marked but never released`
	_ = m
	tmp := h.arena.Get()
	copy(tmp, h.row)
}

func (h *holder) readBeforeOverwrite() int {
	m := h.arena.Mark()
	tmp := Set(nil)
	_ = tmp
	fold := h.arena.GetUnzeroed()
	total := 0
	for _, w := range fold { // want `fold holds unzeroed arena memory but its first use reads it`
		total += int(w)
	}
	h.arena.Release(m)
	return total
}

func (h *holder) overwriteFirstIsFine() int {
	m := h.arena.Mark()
	fold := h.arena.GetUnzeroed()
	copy(fold, h.row)
	total := len(fold)
	h.arena.Release(m)
	return total
}

// storeHandle migrates an arena handle itself into a struct field.
type stash struct{ a *Arena }

func (s *stash) steal(h *holder) {
	m := h.arena.Mark()
	defer h.arena.Release(m)
	s.a = h.arena // want `arena handle h.arena stored into struct field`
}
