// Package antest runs an analyzer over GOPATH-style fixture packages and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract: a comment
//
//	x := leak() // want `regexp matching the message`
//
// on line L asserts exactly one diagnostic on L whose message matches the
// back-quoted (or double-quoted) regular expression. Unmatched diagnostics
// and unsatisfied expectations both fail the test.
package antest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"github.com/graphmining/hbbmc/internal/analysis"
	"github.com/graphmining/hbbmc/internal/analysis/load"
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run applies the analyzer to each fixture package under testdataSrc (a
// directory laid out as <testdataSrc>/<pkgpath>/*.go) and diffs the
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdataSrc string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := load.NewFixtureLoader(testdataSrc)
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		var diags []analysis.Diagnostic
		pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.TypesInfo, &diags)
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, path, err)
		}
		checkWants(t, pkg, diags)
	}
}

var wantRE = regexp.MustCompile("^want (`[^`]*`|\"[^\"]*\")$")

func parseWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := wantRE.FindStringSubmatch(text)
				if m == nil {
					if strings.HasPrefix(text, "want ") {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s: malformed want comment %q", pos, c.Text)
					}
					continue
				}
				pat := m[1][1 : len(m[1])-1]
				re, err := regexp.Compile(pat)
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// FileByName returns the fixture file whose basename matches name — a
// convenience for analyzers' own unit tests.
func FileByName(pkg *load.Package, name string) *ast.File {
	for _, f := range pkg.Files {
		pos := pkg.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "/"+name) || pos.Filename == name {
			return f
		}
	}
	panic(fmt.Sprintf("no fixture file %q", name))
}
