package noalloctest

type pair struct{ a, b int32 }

type engine struct {
	buf   []int32
	cnt   []int32
	name  string
	sinkP *pair
}

func (e *engine) work() {}

func use(x interface{})  { _ = x }
func useP(x *pair)       { _ = x }
func take(f func())      { _ = f }
func kernel(dst []int32) { _ = dst }
func handout() []int32   { return nil }

// good exercises every sanctioned pattern: field-rooted appends, blessed
// locals, value composites, non-capturing literals, amortised growth.
//
//hbbmc:noalloc
func (e *engine) good(p []int32, n int) {
	local := e.buf[:0]
	for _, v := range p {
		local = append(local, v)
	}
	e.buf = local
	e.cnt = append(e.cnt, int32(len(p)))
	q := pair{1, 2}
	_ = q
	g := func(x int32) int32 { return x + 1 }
	_ = g(3)
	if cap(e.cnt) < n { //hbbmc:allowalloc amortised growth, cap-guarded
		e.cnt = make([]int32, n)
	}
	h := handout()
	h = append(h, 9)
	_ = h
	useP(e.sinkP)
	kernel(p[1:])
}

//hbbmc:noalloc
func (e *engine) badMake(n int) []int32 {
	tmp := make([]int32, n) // want `make allocates`
	return tmp
}

//hbbmc:noalloc
func (e *engine) badFreshAppend() {
	var fresh []int32
	fresh = append(fresh, 1) // want `append to fresh, which is not rooted`
	_ = fresh
}

//hbbmc:noalloc
func (e *engine) badClosure() {
	f := func() { _ = e.buf } // want `func literal captures "e" and allocates a closure`
	f()
}

//hbbmc:noalloc
func (e *engine) badBox(v int32) {
	use(v) // want `argument v boxes a int32 into interface parameter`
}

//hbbmc:noalloc
func (e *engine) badMethodValue() {
	take(e.work) // want `method value e.work allocates its receiver binding`
}

//hbbmc:noalloc
func (e *engine) badSliceLit(a, b int32) int32 {
	total := int32(0)
	for _, w := range []int32{a, b} { // want `slice literal allocates`
		total += w
	}
	return total
}

//hbbmc:noalloc
func (e *engine) badAddrComposite() {
	e.sinkP = &pair{1, 2} // want `address-taken composite literal escapes`
}

//hbbmc:noalloc
func (e *engine) badConcat(s string) string {
	return e.name + s // want `string concatenation allocates`
}

//hbbmc:noalloc
func (e *engine) badGo() {
	go e.work() // want `go statement allocates a goroutine`
}

//hbbmc:noalloc
func (e *engine) badStringConv(s string) int {
	b := []byte(s) // want `string<->slice conversion copies`
	return len(b)
}

// unannotated may allocate freely; the directive is opt-in.
func (e *engine) unannotated(n int) []int32 {
	return make([]int32, n)
}
