// Package noalloc rejects heap allocations in functions annotated
// //hbbmc:noalloc — the machine-checked form of PR 4's "allocation-free
// recursion" claim. The check is syntactic but encodes the gc escape
// analysis facts that matter on the hot path:
//
//   - make/new always allocate; so do slice and map composite literals and
//     address-taken composite literals (&T{...});
//   - value struct/array composites do not allocate (they live in
//     registers or the frame), so they are permitted;
//   - a func literal allocates iff it captures variables from the
//     enclosing function; non-capturing literals compile to static
//     functions and are permitted. Method values (x.m used as a func
//     value) always allocate their receiver binding;
//   - append may only grow caller-owned or engine-owned memory: its first
//     argument must root at a struct field selector, a parameter, or a
//     local derived from one of those (or from a call — arenas and
//     kernels return recycled memory). Appending to a fresh local slice
//     is a hidden make;
//   - converting a non-pointer-shaped value (int, struct, slice, string)
//     to an interface boxes it, whether via an explicit conversion, an
//     argument to an interface-typed parameter (fmt.Errorf on the hot
//     path fails here), or a variadic ...any;
//   - string<->[]byte/[]rune conversions copy; string concatenation of
//     non-constants allocates; go statements allocate a goroutine.
//
// The directive governs only the annotated function's own body: callees
// are gated by their own annotations. Amortised grow paths (the
// cap-guarded make-and-copy idiom) are sanctioned with
// `//hbbmc:allowalloc <reason>` on the guarding statement's first line,
// which suppresses findings in that whole statement.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/graphmining/hbbmc/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "//hbbmc:noalloc functions must not contain heap allocations",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		allowLines := analysis.DirectiveLines(pass.Fset, f, "allowalloc")
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncDirective(fn, "noalloc") {
				continue
			}
			check(pass, fn, allowLines)
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	fn      *ast.FuncDecl
	parents map[ast.Node]ast.Node
	allow   map[int]bool
	blessed map[*types.Var]bool
}

func check(pass *analysis.Pass, fn *ast.FuncDecl, allowLines map[int]bool) {
	c := &checker{
		pass:    pass,
		fn:      fn,
		parents: analysis.Parents(fn),
		allow:   allowLines,
		blessed: map[*types.Var]bool{},
	}
	c.blessParamsAndLocals()
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkFuncLit(n)
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.CompositeLit:
			c.checkComposite(n)
		case *ast.GoStmt:
			c.report(n.Pos(), "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			c.checkConcat(n)
		}
		return true
	})
}

// report emits unless an //hbbmc:allowalloc directive line covers one of
// the node's enclosing statements (so a directive on an `if cap(...) < n`
// guard sanctions the whole grow block).
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.suppressed(pos) {
		return
	}
	c.pass.Reportf(pos, format+" in //hbbmc:noalloc function %s", append(args, c.fn.Name.Name)...)
}

func (c *checker) suppressed(pos token.Pos) bool {
	if c.allow[c.pass.Fset.Position(pos).Line] {
		return true
	}
	// Climb to enclosing statements; any whose first line carries the
	// directive sanctions the subtree.
	for n := c.nodeAt(pos); n != nil; n = c.parents[n] {
		if _, ok := n.(ast.Stmt); ok {
			if c.allow[c.pass.Fset.Position(n.Pos()).Line] {
				return true
			}
		}
	}
	return false
}

// nodeAt finds a node starting at pos (the one the violation was reported
// on) so suppressed can climb its parent chain.
func (c *checker) nodeAt(pos token.Pos) ast.Node {
	var found ast.Node
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if n == nil || found != nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			if n.Pos() == pos {
				found = n
			}
			return true
		}
		return false
	})
	return found
}

// blessParamsAndLocals marks append-legal slice roots: the receiver,
// parameters, and locals initialised from fields, parameters, calls
// (arena handouts), or other blessed locals.
func (c *checker) blessParamsAndLocals() {
	blessField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
					c.blessed[v] = true
				}
			}
		}
	}
	blessField(c.fn.Recv)
	blessField(c.fn.Type.Params)
	blessField(c.fn.Type.Results)
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := assign.Rhs[i]
			// x = append(y, ...) blesses x only through y's ownership —
			// letting the call result bless it would make every append
			// self-sanctioning.
			if call, isCall := rhs.(*ast.CallExpr); isCall {
				if fid, isId := call.Fun.(*ast.Ident); isId && fid.Name == "append" {
					if _, isB := c.pass.TypesInfo.Uses[fid].(*types.Builtin); isB {
						if len(call.Args) == 0 || !c.ownedExpr(call.Args[0]) {
							continue
						}
					}
				}
			}
			if !c.ownedExpr(rhs) {
				continue
			}
			if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
				c.blessed[v] = true
			} else if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
				c.blessed[v] = true
			}
		}
		return true
	})
}

// ownedExpr reports whether e denotes memory the function may grow or
// alias without allocating: field selectors, blessed identifiers, calls
// (arena handouts / kernel returns), and derivations thereof.
func (c *checker) ownedExpr(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
			return false
		case *ast.SelectorExpr:
			return true
		case *ast.CallExpr:
			return true
		case *ast.Ident:
			v, ok := c.pass.TypesInfo.Uses[x].(*types.Var)
			return ok && c.blessed[v]
		default:
			return false
		}
	}
}

// checkFuncLit flags literals that capture enclosing-function variables.
func (c *checker) checkFuncLit(lit *ast.FuncLit) {
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		// Captured: declared inside the enclosing function but outside the
		// literal. Package-level vars and the literal's own locals are fine.
		if v.Pos() >= c.fn.Pos() && v.Pos() < c.fn.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured = v.Name()
		}
		return true
	})
	if captured != "" {
		c.report(lit.Pos(), "func literal captures %q and allocates a closure", captured)
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				c.report(call.Pos(), "make allocates")
			case "new":
				c.report(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !c.ownedExpr(call.Args[0]) {
					c.report(call.Pos(),
						"append to %s, which is not rooted in a field, parameter, or arena handout",
						analysis.ExprKey(call.Args[0]))
				}
			}
			return
		}
	}
	// Explicit conversions.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.checkConversion(call, tv.Type, call.Args[0])
		return
	}
	// Interface-typed parameters box concrete arguments; func-typed
	// parameters receiving method values allocate the binding.
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis != token.NoPos)
		if pt == nil {
			continue
		}
		at := c.pass.TypesInfo.Types[arg]
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Type.Underlying()) &&
			!at.IsNil() && !pointerShaped(at.Type) {
			c.report(arg.Pos(), "argument %s boxes a %s into interface parameter",
				analysis.ExprKey(arg), at.Type.String())
		}
		if sel, isSel := arg.(*ast.SelectorExpr); isSel {
			if s := c.pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				c.report(arg.Pos(), "method value %s allocates its receiver binding",
					analysis.ExprKey(arg))
			}
		}
	}
}

// paramType resolves the i'th parameter's type, unwrapping variadics
// (unless the call spreads with ...).
func paramType(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 && !hasEllipsis {
		return sig.Params().At(n - 1).Type().(*types.Slice).Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// pointerShaped reports whether values of t fit an interface's data word
// without boxing (pointers, maps, chans, funcs, unsafe.Pointer).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func (c *checker) checkConversion(call *ast.CallExpr, target types.Type, arg ast.Expr) {
	at := c.pass.TypesInfo.Types[arg]
	if at.Value != nil { // constant-folded; no runtime conversion
		return
	}
	tu := target.Underlying()
	au := at.Type.Underlying()
	if types.IsInterface(tu) && !types.IsInterface(au) && !pointerShaped(at.Type) {
		c.report(call.Pos(), "conversion boxes %s into %s", at.Type.String(), target.String())
		return
	}
	if isString(tu) && isByteOrRuneSlice(au) || isByteOrRuneSlice(tu) && isString(au) {
		c.report(call.Pos(), "string<->slice conversion copies")
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func (c *checker) checkComposite(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates")
		return
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
		return
	}
	if u, ok := c.parents[lit].(*ast.UnaryExpr); ok && u.Op == token.AND {
		c.report(u.Pos(), "address-taken composite literal escapes to the heap")
	}
}

func (c *checker) checkConcat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv := c.pass.TypesInfo.Types[b]
	if tv.Value != nil { // constant concatenation
		return
	}
	if isString(tv.Type.Underlying()) {
		c.report(b.Pos(), "string concatenation allocates")
	}
}
