package noalloc_test

import (
	"testing"

	"github.com/graphmining/hbbmc/internal/analysis/antest"
	"github.com/graphmining/hbbmc/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	antest.Run(t, "testdata/src", noalloc.Analyzer, "noalloctest")
}
