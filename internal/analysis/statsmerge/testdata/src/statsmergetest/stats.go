package statsmergetest

import "time"

// GoodStats merges every numeric field and excuses the coordinator-owned
// one with an explicit directive.
type GoodStats struct {
	Cliques int64         `json:"cliques"`
	Max     int           `json:"max"`
	Elapsed time.Duration `json:"elapsed_ns"`
	//hbbmc:nomerge set once by the coordinator after the workers join
	Workers int    `json:"workers"`
	Label   string `json:"label"`
}

func (s *GoodStats) merge(o *GoodStats) {
	s.Cliques += o.Cliques
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Elapsed += o.Elapsed
}

func (s *GoodStats) String() string { return "good" }

type BadStats struct { // want `BadStats has a merge method but no String method`
	Merged  int64 `json:"merged"`
	Dropped int64 `json:"dropped"` // want `numeric field BadStats.Dropped is not folded`
	NoTag   int   // want `field BadStats.NoTag has no json tag`
	//hbbmc:nomerge stale excuse
	Stale int64 `json:"stale"`  // want `carries //hbbmc:nomerge but IS referenced`
	Dup   int64 `json:"merged"` // want `reuses json tag "merged"`
}

func (s *BadStats) merge(o *BadStats) {
	s.Merged += o.Merged
	s.NoTag += o.NoTag
	s.Stale += o.Stale
	s.Dup += o.Dup
}

// NotAStats has a merge-shaped method over a different parameter type, so
// the analyzer must ignore it entirely.
type NotAStats struct {
	Counter int
}

func (s *NotAStats) merge(o *GoodStats) { _ = o }
