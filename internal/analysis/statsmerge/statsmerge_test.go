package statsmerge_test

import (
	"testing"

	"github.com/graphmining/hbbmc/internal/analysis/antest"
	"github.com/graphmining/hbbmc/internal/analysis/statsmerge"
)

func TestStatsMerge(t *testing.T) {
	antest.Run(t, "testdata/src", statsmerge.Analyzer, "statsmergetest")
}
