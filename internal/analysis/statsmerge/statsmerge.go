// Package statsmerge checks that every numeric field of a stats-like
// struct is folded into its merge method and exposed on the JSON surface.
//
// A struct participates when it has a method named merge (or Merge) whose
// single parameter is a pointer to the same struct — the shape of
// (*core.Stats).merge, which parallel runs use to fold per-worker counters
// into the coordinator's totals. For each such struct the analyzer
// requires, for every field:
//
//   - a json struct tag (the service and CLI marshal Stats directly);
//   - numeric fields (ints, floats, time.Duration) must be read or written
//     somewhere in the merge body, or carry an explicit
//     `//hbbmc:nomerge <reason>` directive for coordinator-owned fields
//     that are set once after the workers join;
//   - a field carrying //hbbmc:nomerge must NOT appear in merge — a stale
//     directive is as wrong as a missing merge line.
//
// The struct's type must also have a String method, the human-readable
// surface the CLI prints.
package statsmerge

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"

	"github.com/graphmining/hbbmc/internal/analysis"
)

// Analyzer is the statsmerge pass.
var Analyzer = &analysis.Analyzer{
	Name: "statsmerge",
	Doc:  "numeric stats fields must be merged, json-tagged, and printed",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, merge := range mergeMethods(pass) {
		checkStruct(pass, merge)
	}
	return nil
}

// mergeTarget pairs one merge method with the struct type it folds.
type mergeTarget struct {
	fn    *ast.FuncDecl
	named *types.Named
}

// mergeMethods finds every func (x *T) merge(o *T) / Merge(o *T) in the
// package where T's underlying type is a struct.
func mergeMethods(pass *analysis.Pass) []mergeTarget {
	var out []mergeTarget
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || (fn.Name.Name != "merge" && fn.Name.Name != "Merge") {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Params().Len() != 1 {
				continue
			}
			recv := derefNamed(sig.Recv().Type())
			arg := derefNamed(sig.Params().At(0).Type())
			if recv == nil || recv != arg {
				continue
			}
			if _, ok := recv.Underlying().(*types.Struct); !ok {
				continue
			}
			out = append(out, mergeTarget{fn: fn, named: recv})
		}
	}
	return out
}

func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func checkStruct(pass *analysis.Pass, target mergeTarget) {
	spec := structSpec(pass, target.named)
	if spec == nil {
		return // struct declared in another package; nothing to check here
	}
	st := spec.Type.(*ast.StructType)
	touched := fieldsTouched(pass, target)

	jsonNames := map[string]*ast.Ident{}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			checkField(pass, target, field, name, touched, jsonNames)
		}
	}

	if !hasStringMethod(target.named) {
		pass.Reportf(spec.Name.Pos(),
			"%s has a merge method but no String method; add the human-readable surface",
			target.named.Obj().Name())
	}
}

// structSpec locates the AST TypeSpec declaring the named struct, or nil if
// it lives outside the package under analysis.
func structSpec(pass *analysis.Pass, named *types.Named) *ast.TypeSpec {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if pass.TypesInfo.Defs[ts.Name] == named.Obj() {
					if _, ok := ts.Type.(*ast.StructType); ok {
						return ts
					}
				}
			}
		}
	}
	return nil
}

// fieldsTouched collects the names of the struct's fields referenced
// anywhere in the merge body, on either the receiver or the argument.
func fieldsTouched(pass *analysis.Pass, target mergeTarget) map[string]bool {
	touched := map[string]bool{}
	ast.Inspect(target.fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if derefNamed(s.Recv()) == target.named {
			touched[sel.Sel.Name] = true
		}
		return true
	})
	return touched
}

func checkField(pass *analysis.Pass, target mergeTarget, field *ast.Field, name *ast.Ident, touched map[string]bool, jsonNames map[string]*ast.Ident) {
	typeName := target.named.Obj().Name()

	tag := jsonTag(field)
	switch {
	case tag == "":
		pass.Reportf(name.Pos(),
			"field %s.%s has no json tag; every merged-stats field must be on the JSON surface",
			typeName, name.Name)
	case tag == "-":
		// Explicitly excluded from JSON; accepted as a deliberate choice.
	default:
		if prev, dup := jsonNames[tag]; dup {
			pass.Reportf(name.Pos(),
				"field %s.%s reuses json tag %q already used by %s", typeName, name.Name, tag, prev.Name)
		}
		jsonNames[tag] = name
	}

	obj := pass.TypesInfo.Defs[name]
	if obj == nil || !isNumeric(obj.Type()) {
		return
	}
	_, nomerge := analysis.Directive("nomerge", field.Doc, field.Comment)
	merged := touched[name.Name]
	switch {
	case nomerge && merged:
		pass.Reportf(name.Pos(),
			"field %s.%s carries //hbbmc:nomerge but IS referenced in %s; drop the stale directive",
			typeName, name.Name, target.fn.Name.Name)
	case !nomerge && !merged:
		pass.Reportf(name.Pos(),
			"numeric field %s.%s is not folded in %s; parallel runs will drop it (merge it or annotate //hbbmc:nomerge <reason>)",
			typeName, name.Name, target.fn.Name.Name)
	}
}

// jsonTag extracts the json tag's name component, or "" when absent.
func jsonTag(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return ""
	}
	tag := reflect.StructTag(raw).Get("json")
	if tag == "" {
		return ""
	}
	for i := 0; i < len(tag); i++ {
		if tag[i] == ',' {
			return tag[:i]
		}
	}
	return tag
}

// isNumeric reports whether t's core type is an integer, float, or complex
// (covering time.Duration via its int64 underlying).
func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// hasStringMethod reports whether *T or T has String() string.
func hasStringMethod(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i)
		if m.Obj().Name() != "String" {
			continue
		}
		sig, ok := m.Obj().Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		if b, ok := sig.Results().At(0).Type().(*types.Basic); ok && b.Kind() == types.String {
			return true
		}
	}
	return false
}
