// Package load type-checks Go packages for the mcelint analyzers without
// golang.org/x/tools/go/packages.
//
// The trick that makes this work offline: `go list -export -deps -json`
// emits, for every package in the build graph, the path of its compiled
// export data in the build cache. The standard library's gc importer
// (go/importer.ForCompiler with a lookup function) can read those files
// directly, so only the target packages' sources are parsed and
// type-checked; every dependency — stdlib included — is imported from
// export data exactly as the compiler itself would.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one fully type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Match      []string
	Error      *struct{ Err string }
}

// exportLookup adapts a map of importpath -> export-data file to the
// signature go/importer.ForCompiler wants.
type exportLookup struct {
	exports map[string]string
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok || f == "" {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(f)
}

// unsafeAwareImporter routes "unsafe" to types.Unsafe (it has no export
// data) and everything else to the gc export-data importer.
type unsafeAwareImporter struct {
	gc types.ImporterFrom
}

func (u *unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.gc.Import(path)
}

// goList runs `go list` with the given flags and decodes the JSON stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Packages loads and type-checks the packages matching patterns in dir
// (the module root; "" means the current directory). Test files are not
// included, matching `go build` granularity.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One invocation yields both the target set (Match is non-empty on
	// packages named by the patterns) and export data for every dependency.
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Standard,Export,Match,Error"}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []*listPkg
	for _, p := range listed {
		if p.Error != nil && len(p.Match) > 0 {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.Match) > 0 && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := &unsafeAwareImporter{
		gc: importer.ForCompiler(fset, "gc", (&exportLookup{exports}).lookup).(types.ImporterFrom),
	}

	var out []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	}, nil
}

// FixtureLoader type-checks analyzer test fixtures laid out GOPATH-style
// under root: root/<importpath>/*.go. Fixture packages may import each
// other (resolved from source) and the standard library (resolved from
// export data fetched lazily via `go list`).
type FixtureLoader struct {
	root    string
	fset    *token.FileSet
	pkgs    map[string]*Package
	exports map[string]string
	imp     types.ImporterFrom
}

// NewFixtureLoader returns a loader rooted at the given testdata/src dir.
func NewFixtureLoader(root string) *FixtureLoader {
	l := &FixtureLoader{
		root:    root,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*Package{},
		exports: map[string]string{},
	}
	l.imp = importer.ForCompiler(l.fset, "gc", (&exportLookup{l.exports}).lookup).(types.ImporterFrom)
	return l
}

// Load type-checks the fixture package at root/<path>.
func (l *FixtureLoader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: fixture %s: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: fixture %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: fixture %s: no Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(func(ip string) (*types.Package, error) {
		return l.importPath(ip)
	})}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: fixture %s: %v", path, err)
	}
	p := &Package{ImportPath: path, Dir: dir, Fset: l.fset, Files: files, Pkg: pkg, TypesInfo: info}
	l.pkgs[path] = p
	return p, nil
}

func (l *FixtureLoader) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// Sibling fixture package?
	if fi, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	// Standard library: resolve export data on first use.
	if _, ok := l.exports[path]; !ok {
		listed, err := goList("", "list", "-e", "-export", "-deps",
			"-json=ImportPath,Export,Error", path)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
	}
	return l.imp.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
