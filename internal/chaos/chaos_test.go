package chaos

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedIsFree(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled() with no armed points")
	}
	if err := Inject("anything"); err != nil {
		t.Fatalf("unarmed Inject returned %v", err)
	}
}

func TestCrashAndError(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("p.crash", "crash"); err != nil {
		t.Fatal(err)
	}
	if err := Arm("p.err", "error:boom"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Enabled() false with armed points")
	}
	if err := Inject("p.crash"); !errors.Is(err, ErrCrash) {
		t.Fatalf("crash point returned %v, want ErrCrash", err)
	}
	if err := Inject("p.err"); err == nil || errors.Is(err, ErrCrash) {
		t.Fatalf("error point returned %v", err)
	}
	if got := Fired("p.crash"); got != 1 {
		t.Fatalf("Fired(p.crash) = %d, want 1", got)
	}
	// A crash point keeps firing deterministically on every hit.
	if err := Inject("p.crash"); !errors.Is(err, ErrCrash) {
		t.Fatal("second hit did not fire")
	}
	Disarm("p.crash")
	if err := Inject("p.crash"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
}

func TestDelay(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("p.slow", "delay:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("p.slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay point slept only %v", d)
	}
}

func TestArmSpecParsing(t *testing.T) {
	t.Cleanup(Reset)
	if err := armSpec("a=crash; b=delay:1ms,c=error:x"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		mu.RLock()
		_, ok := points[name]
		mu.RUnlock()
		if !ok {
			t.Fatalf("point %q not armed", name)
		}
	}
	for _, bad := range []string{"a", "x=explode", "y=delay:fast"} {
		Reset()
		if err := armSpec(bad); err == nil {
			t.Fatalf("armSpec(%q) accepted", bad)
		}
	}
}
