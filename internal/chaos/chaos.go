// Package chaos is a deterministic fault-injection harness: named points in
// production code paths (journal appends, replay, rotation) call Inject and
// normally pay a single atomic load. A test — or an operator reproducing an
// incident — arms a point with an action, and the next time execution
// reaches it the action fires: a simulated crash, an injected error, or a
// delay. Injection is deterministic: a point fires on every hit while
// armed, so "kill the daemon at the first checkpoint append" is a
// reproducible experiment, not a race.
//
// Arming happens through the test API (Arm/Disarm/Reset) or the MCED_CHAOS
// environment variable, a semicolon-separated list of point=action pairs:
//
//	MCED_CHAOS='journal.append.torn=crash;service.replay=delay:200ms'
//
// Actions:
//
//	crash        Inject returns ErrCrash. The caller decides what a crash
//	             means at that point — the journal wedges itself (all later
//	             writes dropped), leaving exactly the on-disk state a
//	             kill -9 at that instant would have left.
//	error:MSG    Inject returns an injected error with message MSG.
//	delay:DUR    Inject sleeps for the Go duration DUR, then returns nil.
package chaos

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCrash is returned by Inject at a point armed with the "crash" action.
// Callers translate it into their own crash semantics (the journal wedges;
// a subprocess harness may exit).
var ErrCrash = errors.New("chaos: injected crash")

// point is one armed injection site.
type point struct {
	action string        // "crash" | "error" | "delay"
	msg    string        // error message for "error"
	delay  time.Duration // sleep for "delay"
	fired  atomic.Int64
}

var (
	mu sync.RWMutex
	//hbbmc:guardedby mu
	points map[string]*point
	// active is the fast-path gate: zero means no point is armed anywhere
	// and Inject returns after one atomic load.
	active atomic.Int32
)

// Enabled reports whether any point is armed.
func Enabled() bool { return active.Load() != 0 }

// Inject fires the named point if it is armed. It returns ErrCrash for a
// crash action, an injected error for an error action, and nil otherwise
// (after sleeping, for a delay action). Unarmed points cost one atomic load.
func Inject(name string) error {
	if active.Load() == 0 {
		return nil
	}
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	p.fired.Add(1)
	switch p.action {
	case "crash":
		return ErrCrash
	case "error":
		return fmt.Errorf("chaos: injected error at %s: %s", name, p.msg)
	case "delay":
		time.Sleep(p.delay)
	}
	return nil
}

// Arm arms one point with an action spec ("crash", "error:MSG",
// "delay:DUR"). Re-arming replaces the previous action.
func Arm(name, spec string) error {
	if name == "" {
		return errors.New("chaos: empty point name")
	}
	p := &point{}
	action, arg, _ := strings.Cut(spec, ":")
	switch action {
	case "crash":
		p.action = "crash"
	case "error":
		p.action = "error"
		if arg == "" {
			arg = "injected"
		}
		p.msg = arg
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return fmt.Errorf("chaos: invalid delay %q for point %s", arg, name)
		}
		p.action = "delay"
		p.delay = d
	default:
		return fmt.Errorf("chaos: unknown action %q for point %s (crash, error:MSG, delay:DUR)", spec, name)
	}
	mu.Lock()
	if points == nil {
		points = make(map[string]*point)
	}
	if _, existed := points[name]; !existed {
		active.Add(1)
	}
	points[name] = p
	mu.Unlock()
	return nil
}

// Disarm removes one armed point; unknown names are a no-op.
func Disarm(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		active.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every point. Tests call it in cleanup so armed points never
// leak across cases.
func Reset() {
	mu.Lock()
	for range points {
		active.Add(-1)
	}
	points = nil
	mu.Unlock()
}

// Fired returns how many times the named point has fired since it was
// (last) armed; 0 for unarmed points.
func Fired(name string) int64 {
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

// ArmFromEnv arms every point listed in the MCED_CHAOS environment variable
// (semicolon- or comma-separated point=action pairs). Malformed entries are
// an error so a typo in an experiment fails loudly instead of silently not
// injecting.
func ArmFromEnv() error {
	return armSpec(os.Getenv("MCED_CHAOS"))
}

func armSpec(env string) error {
	if env == "" {
		return nil
	}
	for _, entry := range strings.FieldsFunc(env, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("chaos: malformed MCED_CHAOS entry %q (want point=action)", entry)
		}
		if err := Arm(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}
