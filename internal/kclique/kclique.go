// Package kclique implements edge-oriented k-clique listing — the EBBkC
// technique of Wang, Yu & Long (SIGMOD 2024, reference [19] of the paper)
// whose branching strategy and truss-based edge ordering HBBMC migrates to
// maximal clique enumeration. It serves both as the substrate the paper
// builds on and as a standalone streaming k-clique lister (the backend of
// hbbmc.ListKCliques). Counting-only queries run on the session kernels
// instead — core.Session.CountKCliques reuses a session's cached ordering
// and incidence and parallelises; this package's Count remains as the
// lister's counting mode and as an independent differential oracle.
//
// For k ≥ 3 the top level creates one branch per edge in truss order; the
// branch's candidates are the common neighbors whose triangle edges both
// rank later, so every branch is bounded by the truss parameter τ. Inside a
// branch the recursion extends the partial clique vertex by vertex over the
// masked adjacency (edges ranked after the branch edge), which guarantees
// each k-clique is produced exactly once — at the branch of its
// minimum-rank edge.
package kclique

import (
	"fmt"

	"github.com/graphmining/hbbmc/internal/bitset"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/truss"
)

// List emits every k-clique of g exactly once. The slice passed to emit is
// reused; callers must copy it to retain it. emit may be nil to count only.
// Returns the number of k-cliques.
func List(g *graph.Graph, k int, emit func([]int32)) (int64, error) {
	switch {
	case k <= 0:
		return 0, fmt.Errorf("kclique: k must be positive, got %d", k)
	case k == 1:
		var n int64
		buf := make([]int32, 1)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			n++
			if emit != nil {
				buf[0] = v
				emit(buf)
			}
		}
		return n, nil
	case k == 2:
		var n int64
		buf := make([]int32, 2)
		for e := 0; e < g.NumEdges(); e++ {
			n++
			if emit != nil {
				buf[0], buf[1] = g.EdgeEndpoints(int32(e))
				emit(buf)
			}
		}
		return n, nil
	}
	l := &lister{g: g, k: k, emit: emit}
	l.run()
	return l.count, nil
}

// Count returns the number of k-cliques of g.
func Count(g *graph.Graph, k int) (int64, error) {
	return List(g, k, nil)
}

type lister struct {
	g     *graph.Graph
	k     int
	emit  func([]int32)
	count int64

	dec     *truss.Decomposition
	verts   []int32
	localID []int32
	adjH    []bitset.Set
	arena   *bitset.Arena
	S       []int32
	emitBuf []int32
}

func (l *lister) run() {
	g := l.g
	l.dec = truss.Decompose(g)
	l.localID = make([]int32, g.NumVertices())
	for i := range l.localID {
		l.localID[i] = -1
	}
	l.arena = bitset.NewArena(0)
	inc := l.dec.Inc
	rank := l.dec.Rank

	for _, eid := range l.dec.Order {
		if inc.Count(eid) == 0 {
			continue // no triangles: the edge is in no k-clique for k ≥ 3
		}
		a, b := g.EdgeEndpoints(eid)
		r := rank[eid]
		// Candidates: common neighbors whose side edges both rank after e.
		l.verts = l.verts[:0]
		lo, hi := inc.Range(eid)
		for t := lo; t < hi; t++ {
			if rank[inc.CoSrc(t)] > r && rank[inc.CoDst(t)] > r {
				l.verts = append(l.verts, inc.Third(t))
			}
		}
		if len(l.verts) < l.k-2 {
			continue
		}
		l.installUniverse(r)
		C := l.arena.Get()
		for i := range l.verts {
			C.Set(i)
		}
		l.S = append(l.S[:0], a, b)
		l.extend(C, l.k-2)
		for _, v := range l.verts {
			l.localID[v] = -1
		}
	}
}

// installUniverse builds masked adjacency rows (rank > r) over l.verts.
func (l *lister) installUniverse(r int32) {
	k := len(l.verts)
	l.arena.Reset(k)
	if cap(l.adjH) < k {
		l.adjH = make([]bitset.Set, k)
	}
	l.adjH = l.adjH[:k]
	for i, v := range l.verts {
		l.localID[v] = int32(i)
	}
	rank := l.dec.Rank
	for i, v := range l.verts {
		row := l.arena.Get()
		l.adjH[i] = row
		nbrs := l.g.Neighbors(v)
		eids := l.g.IncidentEdgeIDs(v)
		for t, w := range nbrs {
			j := l.localID[w]
			if j < 0 {
				continue
			}
			if rank[eids[t]] > r {
				row.Set(int(j))
			}
		}
	}
}

// extend adds `need` more mutually adjacent candidates to the partial
// clique. Candidates are consumed in ascending local order; each branch
// removes its vertex from the set passed to later siblings, so every
// completion is generated once.
func (l *lister) extend(C bitset.Set, need int) {
	if need == 0 {
		l.count++
		if l.emit != nil {
			l.emitBuf = append(l.emitBuf[:0], l.S...)
			l.emit(l.emitBuf)
		}
		return
	}
	if C.Count() < need {
		return
	}
	if need == 1 {
		// Every remaining candidate completes a clique.
		for v := C.First(); v >= 0; v = C.NextAfter(v) {
			l.count++
			if l.emit != nil {
				l.emitBuf = append(l.emitBuf[:0], l.S...)
				l.emitBuf = append(l.emitBuf, l.verts[v])
				l.emit(l.emitBuf)
			}
		}
		return
	}
	mark := l.arena.Mark()
	childC := l.arena.Get()
	for v := C.First(); v >= 0; v = C.NextAfter(v) {
		childC.AndInto(C, l.adjH[v])
		l.S = append(l.S, l.verts[v])
		l.extend(childC, need-1)
		l.S = l.S[:len(l.S)-1]
		C.Unset(v)
	}
	l.arena.Release(mark)
}
