package kclique

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/graph"
)

func binom(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	r := int64(1)
	for i := 0; i < k; i++ {
		r = r * int64(n-i) / int64(i+1)
	}
	return r
}

// bruteCount counts k-cliques by subset enumeration (n ≤ 20).
func bruteCount(g *graph.Graph, k int) int64 {
	n := g.NumVertices()
	var count int64
	var rec func(start int, chosen []int32)
	rec = func(start int, chosen []int32) {
		if len(chosen) == k {
			count++
			return
		}
		for v := start; v < n; v++ {
			ok := true
			for _, u := range chosen {
				if !g.HasEdge(int32(v), u) {
					ok = false
					break
				}
			}
			if ok {
				rec(v+1, append(chosen, int32(v)))
			}
		}
	}
	rec(0, nil)
	return count
}

func TestCompleteGraphCounts(t *testing.T) {
	for n := 1; n <= 10; n++ {
		g := gen.Complete(n)
		for k := 1; k <= n+1; k++ {
			got, err := Count(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if want := binom(n, k); got != want {
				t.Errorf("K%d: %d %d-cliques, want %d", n, got, k, want)
			}
		}
	}
}

func TestEdgeCases(t *testing.T) {
	g := gen.Path(5)
	if _, err := Count(g, 0); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, err := Count(g, -2); err == nil {
		t.Error("negative k must be rejected")
	}
	n1, _ := Count(g, 1)
	if n1 != 5 {
		t.Errorf("1-cliques = %d, want 5", n1)
	}
	n2, _ := Count(g, 2)
	if n2 != 4 {
		t.Errorf("2-cliques = %d, want 4", n2)
	}
	n3, _ := Count(g, 3)
	if n3 != 0 {
		t.Errorf("3-cliques in a path = %d, want 0", n3)
	}
}

func TestTriangleCount(t *testing.T) {
	// Two triangles sharing an edge: 0-1-2 and 1-2-3.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	n, _ := Count(g, 3)
	if n != 2 {
		t.Errorf("triangles = %d, want 2", n)
	}
	n4, _ := Count(g, 4)
	if n4 != 0 {
		t.Errorf("4-cliques = %d, want 0", n4)
	}
}

func TestAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 120; iter++ {
		n := 1 + rng.Intn(16)
		b := graph.NewBuilder(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.MustBuild()
		for k := 1; k <= 6; k++ {
			got, err := Count(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteCount(g, k); got != want {
				t.Fatalf("iter %d k=%d: got %d, want %d", iter, k, got, want)
			}
		}
	}
}

func TestListedCliquesAreValidAndDistinct(t *testing.T) {
	g := gen.NoisyCliques(60, 6, 8, 60, 9)
	for k := 3; k <= 6; k++ {
		seen := map[string]bool{}
		count, err := List(g, k, func(c []int32) {
			if len(c) != k {
				t.Fatalf("clique %v has %d vertices, want %d", c, len(c), k)
			}
			cc := append([]int32(nil), c...)
			sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
			for i := 0; i < len(cc); i++ {
				for j := i + 1; j < len(cc); j++ {
					if !g.HasEdge(cc[i], cc[j]) {
						t.Fatalf("%v is not a clique", cc)
					}
				}
			}
			key := fmt.Sprint(cc)
			if seen[key] {
				t.Fatalf("duplicate %d-clique %v", k, cc)
			}
			seen[key] = true
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != int64(len(seen)) {
			t.Fatalf("k=%d: count %d != emitted %d", k, count, len(seen))
		}
	}
}

func TestMoonMoserKCliques(t *testing.T) {
	// MoonMoser(s) = complete s-partite with parts of 3: k-cliques pick k
	// distinct parts and one of 3 vertices each: C(s,k)·3^k.
	for s := 2; s <= 4; s++ {
		g := gen.MoonMoser(s)
		for k := 1; k <= s; k++ {
			got, _ := Count(g, k)
			want := binom(s, k)
			for i := 0; i < k; i++ {
				want *= 3
			}
			if got != want {
				t.Errorf("MoonMoser(%d) k=%d: got %d, want %d", s, k, got, want)
			}
		}
		if over, _ := Count(g, s+1); over != 0 {
			t.Errorf("MoonMoser(%d) has no (s+1)-clique", s)
		}
	}
}
