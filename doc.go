// Package hbbmc is a maximal clique enumeration (MCE) library implementing
// the hybrid branch-and-bound framework HBBMC of Wang, Yu & Long,
// "Maximal Clique Enumeration with Hybrid Branching and Early Termination"
// (ICDE 2025), together with the complete family of Bron–Kerbosch baselines
// it is evaluated against.
//
// # Quick start
//
//	g, err := hbbmc.LoadEdgeListFile("graph.txt")
//	if err != nil { ... }
//	stats, err := hbbmc.Enumerate(g, hbbmc.DefaultOptions(), func(c []int32) {
//		fmt.Println(c) // one maximal clique; copy the slice to retain it
//	})
//
// DefaultOptions selects HBBMC++ — hybrid branching over a truss-based edge
// ordering, early termination for 3-plex candidate graphs, and graph
// reduction — the configuration the paper shows dominating the state of the
// art. Every published baseline (BK, BK_Pivot, BK_Ref, BK_Degen, BK_Degree,
// BK_Rcd, BK_Fac, and the pure edge-oriented EBBMC) is available through
// Options.Algorithm, and the paper's ablation knobs (early-termination
// threshold t, hybrid switch depth d, edge-ordering choice, inner vertex
// recursion) are all exposed.
//
// # Parallel enumeration
//
// EnumerateParallel distributes the independent top-level branches of the
// ordered frameworks over worker goroutines. Scheduling is dynamic: an
// atomic work queue hands out chunks of branches with guided sizing —
// large chunks while every worker is busy, single branches toward the
// skewed tail of the truss/degeneracy order — so stragglers cannot pin the
// run to one slow worker the way static striding does. Every ordered
// algorithm parallelises, including HBBMC at any SwitchDepth; only the
// whole-graph BK/BKPivot fall back to the sequential driver, and
// Stats.Workers / Stats.ParallelFallback record what actually ran.
//
// The emit contract under parallelism: the callback is never invoked
// concurrently, but cliques arrive in nondeterministic order and are
// delivered in per-worker batches (Options.EmitBatchSize, default 256), so
// a clique may be reported slightly after its discovery. As in the
// sequential driver, the slice passed to emit is reused — copy it to
// retain it. Options.Workers and Options.ParallelChunkSize tune the
// worker count and work-queue chunking.
//
// # Structure
//
// The root package is a thin facade over the internal engine:
//
//   - internal/core — the branch-and-bound engines and the ET/GR techniques
//   - internal/graph — immutable CSR graphs and loaders
//   - internal/order, internal/truss — degeneracy and truss orderings
//   - internal/plex — direct enumeration from 2-/3-plex candidate graphs
//   - internal/reduce — graph-reduction preprocessing
//   - internal/gen — synthetic graph generators (ER, BA, SBM, ...)
//   - internal/kclique — EBBkC k-clique listing, the paper's substrate [19]
//
// The cmd/ directory ships four tools: mce (enumerate), mcegen (generate
// workloads), mcebench (reproduce the paper's tables and figures) and
// mceverify (audit a clique file against its graph).
package hbbmc
