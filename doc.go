// Package hbbmc is a maximal clique enumeration (MCE) library implementing
// the hybrid branch-and-bound framework HBBMC of Wang, Yu & Long,
// "Maximal Clique Enumeration with Hybrid Branching and Early Termination"
// (ICDE 2025), together with the complete family of Bron–Kerbosch baselines
// it is evaluated against.
//
// # Quick start
//
//	g, err := hbbmc.LoadEdgeListFile("graph.txt")
//	if err != nil { ... }
//	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
//	if err != nil { ... }
//	for c := range sess.Cliques(ctx) {
//		fmt.Println(c) // one maximal clique; copy the slice to retain it
//	}
//
// DefaultOptions selects HBBMC++ — hybrid branching over a truss-based edge
// ordering, early termination for 3-plex candidate graphs, and graph
// reduction — the configuration the paper shows dominating the state of the
// art. Every published baseline (BK, BK_Pivot, BK_Ref, BK_Degen, BK_Degree,
// BK_Rcd, BK_Fac, and the pure edge-oriented EBBMC) is available through
// Options.Algorithm, and the paper's ablation knobs (early-termination
// threshold t, hybrid switch depth d, edge-ordering choice, inner vertex
// recursion) are all exposed.
//
// # Sessions: cache the preprocessing, query many times
//
// NewSession computes the O(δm) preprocessing — graph reduction, the
// truss/degeneracy/degree ordering, the triangle incidence — exactly once
// and serves any number of queries against it: Session.Enumerate (streaming
// Visitor), Session.Count, Session.Collect, the Session.Cliques range
// iterator, and Session.EnumerateParallel. Sessions are immutable and safe
// for concurrent queries, which makes them the natural unit for a service
// answering many clique queries over the same graph — and the repository
// ships that service: the mced daemon (cmd/mced, built on internal/service)
// keeps a registry of warm sessions under an LRU byte budget
// (Session.MemoryEstimate) and serves enumeration jobs over an HTTP JSON
// API with NDJSON clique streaming and worker-slot admission control. See
// the README's "Serving" section for the curl walkthrough. Query Stats
// report zero OrderingTime; the cached cost is Session.PrepTime.
//
// The daemon also scales past one machine: started with -peers, mced runs
// as a coordinator that splits a job's top-level branches into shard
// descriptors (internal/distrib) — each carrying the dataset and ordering
// fingerprints plus a branch interval — dispatches them to peer daemons
// over the same /v1/jobs API, merges the NDJSON streams exactly-once, and
// re-splits stragglers when a peer stalls or dies. Peers are probed via
// /v1/info and a fingerprint mismatch is a hard 409, so a shard can never
// silently run against the wrong graph. See the README's "Distributed
// serving" section.
//
// # Job types beyond enumeration
//
// A Session answers more than maximal-clique enumeration; every query
// type shares the same cached preprocessing, cost-ordered branch schedule
// and allocation-free kernels:
//
//   - Session.MaxClique solves the exact maximum-clique problem by branch
//     and bound over the session's branches: a greedy-coloring upper
//     bound prunes branches that cannot beat the incumbent (seeded from
//     the reduction's cliques and a greedy heuristic), and parallel
//     workers share the incumbent size atomically so any worker's find
//     tightens every other worker's bound. Stats.BnBCalls,
//     Stats.BnBPrunes and Stats.IncumbentUpdates report the search shape;
//     the witness clique is the return value.
//   - Session.TopK returns the k largest maximal cliques (size
//     descending, then lexicographic) by running the unchanged
//     enumeration through a bounded worst-first heap whose rejection
//     threshold tightens as it fills.
//   - Session.CountKCliques counts the k-vertex cliques (not necessarily
//     maximal) on the session's edge- or vertex-oriented kernels,
//     reporting the count in Stats.KCliques.
//
// The mce command exposes these as -maxclique, -topk and -kcliques; the
// mced daemon as the job "type" field (max_clique, top_k, kclique_count —
// see internal/service). The README's "Job types" table summarises all
// five types across the three surfaces.
//
// Per-request variation on a shared session goes through QueryOptions:
// Session.EnumerateWith and Session.CountWith override the run knobs
// (worker count, MaxCliques budget, emit batching, phase timers) for one
// query without rebuilding — or fragmenting the cache of — the
// preprocessing. Options.SessionKey canonicalises the session-defining
// fields for exactly this purpose: two Options with equal keys can share
// one Session.
//
// # Cancellation and early stops
//
// Every session query takes a context.Context, honoured cooperatively at
// top-branch granularity: after a cancellation or deadline the query
// returns within one top-level branch (one edge or vertex of the ordering),
// yielding the partial Stats and an error wrapping ctx.Err(). Two more ways
// to stop early:
//
//   - a Visitor returning false ends the run with ErrStopped and no further
//     Visitor calls;
//   - Options.MaxCliques caps the run at a clique budget — exactly that many
//     cliques are counted and delivered regardless of worker count, again
//     with ErrStopped.
//
// The whole-graph algorithms BK and BKPivot run as a single branch, so they
// only observe cancellation before that branch starts.
//
// # Parallel enumeration
//
// Options.Workers > 1 (or UseAllCores) distributes the independent
// top-level branches of the ordered frameworks over worker goroutines.
// Scheduling is dynamic: an atomic work queue hands out chunks of branches
// with guided sizing — large chunks while every worker is busy, single
// branches toward the skewed tail of the truss/degeneracy order — so
// stragglers cannot pin the run to one slow worker the way static striding
// does. Every ordered algorithm parallelises, including HBBMC at any
// SwitchDepth; only the whole-graph BK/BKPivot fall back to the sequential
// driver, and Stats.Workers / Stats.ParallelFallback record what actually
// ran.
//
// The delivery contract under parallelism: the Visitor is never invoked
// concurrently, but it runs on internal worker goroutines rather than the
// caller's (so goroutine-local mechanisms — recover around the query,
// runtime.Goexit, testing.T.Fatalf — do not reach across), cliques arrive
// in nondeterministic order, and they are delivered in per-worker batches
// (Options.EmitBatchSize, default 256), so a clique may be reported
// slightly after its discovery. As in the sequential driver, the slice
// passed to the Visitor is reused — copy it to retain it.
//
// # Performance architecture
//
// The enumeration core is engineered around word-parallel bitset kernels
// and allocation-free branch state:
//
//   - Fused kernels. Candidate-degree and pivot scans run on fused
//     intersect+popcount kernels (4-way unrolled) and iterate bitsets
//     word-by-word instead of per set bit, so a recursion node costs one
//     streaming pass per candidate row rather than separate
//     intersect-then-count passes threaded through per-bit calls.
//   - Epoch-stamped universes. Each top-level branch installs a local
//     vertex universe; the residual→local id map is epoch-stamped (one
//     packed word per vertex) and membership is pre-filtered through a
//     dense bitmap (one bit per vertex, cache-resident), so installing and
//     probing a universe is O(universe) with no per-branch teardown.
//   - Zero-reset recursion state. Candidate/exclusion sets, candidate-edge
//     lists and per-level degree counts are carved from mark/release
//     arenas; the hot path allocates nothing in steady state, and sets that
//     are fully overwritten skip the zeroing pass.
//   - Incremental degree maintenance. BK_Rcd's removal loop decrements the
//     candidate degrees of the removed vertex's neighbors instead of
//     rescanning every candidate row per step.
//   - Cost-ordered parallel scheduling. Parallel queries hand out top-level
//     branches in descending estimated-cost order (triangle count per edge,
//     later-neighbor count per vertex) with ramp-up chunking — single
//     branches at the expensive head, growing chunks toward the cheap tail
//     — so one late big branch cannot strand the run on a single worker.
//
// Options.PhaseTimers makes any query account its hot-path time into
// Stats.UniverseTime (universe install + adjacency row building),
// Stats.PivotTime (pivot/degree scans), Stats.ETTime (early-termination
// checks and plex construction) and Stats.EmitTime (clique delivery); the
// mce command prints the breakdown under -phases. The contribution of the
// fused path itself is measurable in-repo: `go test ./internal/core -bench
// AblationUnfusedKernels` runs every framework fused and unfused back to
// back, and `go test ./internal/bitset -bench BenchmarkKernel` compares the
// kernels against their composed forms.
//
// # Input formats and the binary snapshot cache
//
// LoadFile reads a graph in any supported format, auto-detected from
// content and file extension (and transparently gunzipped when the gzip
// magic bytes lead the file):
//
//   - SNAP/plain edge lists: "u v" per line, '#'/'%' comments, an ignored
//     third column (LoadEdgeList; ParseEdgeList parses in-memory input on
//     all cores by sharding it at line boundaries)
//   - DIMACS clique/coloring files: "p edge n m" / "e u v" (LoadDIMACS)
//   - MatrixMarket coordinate files: "%%MatrixMarket matrix coordinate ...",
//     1-based indices, values ignored, any symmetry
//   - METIS/Chaco adjacency files, detected by the .metis/.graph extension
//     (the format has no content signature); vertex/edge weights are
//     honored per the fmt code and skipped
//   - .hbg binary CSR snapshots ("HBGF" magic)
//
// The .hbg snapshot is this library's versioned binary format: the CSR
// offsets and adjacency of a parsed graph plus a CRC-32C, written by
// Graph.SaveBinary and reloaded by LoadBinary in a single sequential read —
// one to two orders of magnitude faster than re-parsing text, since
// sorting, deduplication and edge-id assignment are already encoded.
// LoadFileCached wires the two together: it keeps a "<input>.hbg" sidecar
// next to any text input (invalidated by modification time) so every load
// after the first skips parsing entirely. The mce and mceverify commands
// expose this as -cache, mcebench as -cache <dir> for its synthetic
// datasets, and mcegen writes snapshots directly when -out ends in .hbg.
//
// # Migrating from the one-shot functions
//
// The top-level Enumerate, EnumerateParallel, Count, CountParallel and
// Collect predate sessions; they remain as thin deprecated wrappers that
// build a throwaway session per call, so existing code keeps working
// unchanged (including EnumerateParallel's positional workers argument,
// now folded into Options.Workers). New code should hold a Session:
//
//	stats, err := hbbmc.Enumerate(g, opts, emit)        // before
//
//	sess, err := hbbmc.NewSession(g, opts)              // after
//	stats, err := sess.Enumerate(ctx, func(c []int32) bool {
//		emit(c)
//		return true // false would stop the run
//	})
//
// # Structure
//
// The root package is a thin facade over the internal engine:
//
//   - internal/core — the branch-and-bound engines, sessions, ET/GR,
//     and the workload queries (MaxClique, TopK, CountKCliques)
//   - internal/service — the mced daemon: dataset registry, streaming
//     jobs, admission control, distributed coordinator
//   - internal/distrib — shard descriptors and range planning shared by
//     the local scheduler and the coordinator
//   - internal/graph — immutable CSR graphs and loaders
//   - internal/order, internal/truss — degeneracy and truss orderings
//   - internal/plex — direct enumeration from 2-/3-plex candidate graphs
//   - internal/reduce — graph-reduction preprocessing
//   - internal/gen — synthetic graph generators (ER, BA, SBM, ...)
//   - internal/kclique — EBBkC k-clique listing, the paper's substrate [19]
//   - internal/analysis — custom static analyzers enforcing the engine's
//     invariants (allocation-free hot path, arena windows, Stats merge
//     coverage, mutex guards, stop-latch polling)
//
// The cmd/ directory ships six tools: mce (all five job types, with
// -timeout and -maxcliques bounds), mced (the resident enumeration
// daemon), mcegen
// (generate workloads), mcebench (reproduce the paper's tables and
// figures, optionally as JSON lines), mceverify (audit a clique file
// against its graph) and mcelint (the static-analysis suite; run it with
// `go tool mcelint ./...` — see the README's "Static analysis" section
// for the //hbbmc:noalloc and //hbbmc:guardedby annotation conventions).
package hbbmc
