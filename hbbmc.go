package hbbmc

import (
	"context"
	"io"
	"math"

	"github.com/graphmining/hbbmc/internal/core"
	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/kclique"
	"github.com/graphmining/hbbmc/internal/order"
	"github.com/graphmining/hbbmc/internal/truss"
)

// Graph is an immutable simple undirected graph in CSR form. Build one with
// NewBuilder, FromEdges or the loaders below.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// Edge is an undirected edge used by FromEdges.
type Edge = graph.Edge

// NewBuilder returns a Builder for a graph with at least n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges constructs a Graph from an edge list (self-loops and duplicates
// are dropped).
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// LoadEdgeList parses whitespace-separated "u v" lines ('#'/'%' comments).
func LoadEdgeList(r io.Reader) (*Graph, error) { return graph.LoadEdgeList(r) }

// LoadEdgeListFile opens and parses an edge-list file.
func LoadEdgeListFile(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// LoadDIMACS parses the DIMACS clique format ("p edge n m" / "e u v").
func LoadDIMACS(r io.Reader) (*Graph, error) { return graph.LoadDIMACS(r) }

// Format identifies a graph input format (edge list, DIMACS, MatrixMarket,
// METIS, .hbg binary snapshot) for the multi-format loader.
type Format = graph.Format

// Format constants for LoadOptions.Format.
const (
	FormatAuto         = graph.FormatAuto
	FormatEdgeList     = graph.FormatEdgeList
	FormatDIMACS       = graph.FormatDIMACS
	FormatMatrixMarket = graph.FormatMatrixMarket
	FormatMETIS        = graph.FormatMETIS
	FormatBinary       = graph.FormatBinary
)

// LoadOptions configures Load/LoadFile/LoadFileCached.
type LoadOptions = graph.LoadOptions

// ParseFormat maps a flag spelling ("auto", "edgelist", "dimacs", "mtx",
// "metis", "hbg", ...) to a Format.
func ParseFormat(s string) (Format, error) { return graph.ParseFormat(s) }

// DetectFormat sniffs the format of (decompressed) input data, with path as
// a hint for formats without a content signature.
func DetectFormat(data []byte, path string) Format { return graph.DetectFormat(data, path) }

// Load reads a graph in any supported format from r, decompressing gzip
// transparently (detected by magic bytes).
func Load(r io.Reader, opts LoadOptions) (*Graph, error) { return graph.Load(r, opts) }

// LoadFile reads a graph file in any supported format, using the extension
// as a detection hint and decompressing gzip transparently.
func LoadFile(path string, opts LoadOptions) (*Graph, error) { return graph.LoadFile(path, opts) }

// LoadFileCached is LoadFile backed by a binary .hbg sidecar snapshot
// (graph.CachePath): a fresh sidecar is loaded instead of parsing, and a
// parse writes the sidecar best-effort so the next load skips it.
func LoadFileCached(path string, opts LoadOptions) (*Graph, bool, error) {
	return graph.LoadFileCached(path, opts)
}

// ParseEdgeList parses an in-memory edge list on up to workers goroutines
// (0 = all cores), producing the same graph as LoadEdgeList.
func ParseEdgeList(data []byte, workers int) (*Graph, error) {
	return graph.ParseEdgeList(data, workers)
}

// LoadBinary reads a .hbg binary CSR snapshot (see Graph.SaveBinary).
func LoadBinary(r io.Reader) (*Graph, error) { return graph.LoadBinary(r) }

// LoadBinaryFile opens and parses a .hbg snapshot file.
func LoadBinaryFile(path string) (*Graph, error) { return graph.LoadBinaryFile(path) }

// Options configures an enumeration run; see the field documentation in
// internal/core for the full contract of each knob.
type Options = core.Options

// Stats aggregates the counters of one run (clique count, branch counts,
// early-termination ratios, timings).
type Stats = core.Stats

// PhaseTime names one per-phase timer of a run; Stats.PhaseTimes returns
// the four timers (universe, pivot, et, emit) in fixed order.
type PhaseTime = core.PhaseTime

// MergeStats folds src's per-worker counters into dst — the aggregation the
// distributed coordinator applies across the Stats of remote branch-range
// shards. Coordinator-only fields (wall-clock spans, graph properties, the
// shard counters) are not folded; the caller seeds them. See core.Stats.
func MergeStats(dst, src *Stats) { core.MergeStats(dst, src) }

// RampUpChunk is the shared guided ramp-up chunk policy of the cost-ordered
// branch schedulers: the in-process parallel work queue and the distributed
// shard splitter (internal/distrib) both shape their claims with it, so a
// remote shard stream decomposes work exactly like local workers do.
func RampUpChunk(pos, remaining, consumers int) int {
	return core.RampUpChunk(pos, remaining, consumers)
}

// Algorithm selects the enumeration framework.
type Algorithm = core.Algorithm

// Framework constants, mirroring the paper's algorithm names.
const (
	BK       = core.BK       // original Bron–Kerbosch (whole graph)
	BKPivot  = core.BKPivot  // Tomita pivoting (whole graph)
	BKRef    = core.BKRef    // Naudé's refined pivoting
	BKDegen  = core.BKDegen  // Eppstein–Löffler–Strash degeneracy split
	BKDegree = core.BKDegree // degree-ordered split
	BKRcd    = core.BKRcd    // top-down min-degree removal
	BKFac    = core.BKFac    // adaptive pivot maintenance
	EBBMC    = core.EBBMC    // pure edge-oriented branching
	HBBMC    = core.HBBMC    // the paper's hybrid framework
)

// InnerAlgorithm selects the vertex recursion inside hybrid branches.
type InnerAlgorithm = core.InnerAlgorithm

// Inner recursion constants for Options.Inner.
const (
	InnerPivot = core.InnerPivot
	InnerRef   = core.InnerRef
	InnerRcd   = core.InnerRcd
	InnerFac   = core.InnerFac
)

// EdgeOrderKind selects the edge ordering for EBBMC/HBBMC.
type EdgeOrderKind = core.EdgeOrderKind

// Edge-ordering constants for Options.EdgeOrder.
const (
	EdgeOrderTruss      = core.EdgeOrderTruss
	EdgeOrderDegeneracy = core.EdgeOrderDegeneracy
	EdgeOrderMinDegree  = core.EdgeOrderMinDegree
)

// DefaultOptions returns the paper's strongest configuration, HBBMC++:
// hybrid branching, early termination at t=3, graph reduction.
func DefaultOptions() Options { return core.Defaults() }

// ParseAlgorithm maps a case-insensitive flag spelling ("hbbmc",
// "bkdegen", ...) to an Algorithm; AlgorithmChoices lists the accepted
// spellings for usage strings.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// ParseInnerAlgorithm maps a flag spelling ("pivot", "rcd", ...) to an
// InnerAlgorithm.
func ParseInnerAlgorithm(s string) (InnerAlgorithm, error) { return core.ParseInnerAlgorithm(s) }

// ParseEdgeOrder maps a flag spelling ("truss", "degeneracy", "mindegree")
// to an EdgeOrderKind.
func ParseEdgeOrder(s string) (EdgeOrderKind, error) { return core.ParseEdgeOrder(s) }

// AlgorithmChoices, InnerChoices and EdgeOrderChoices return the accepted
// parse spellings as "a|b|c" lists for flag usage strings.
func AlgorithmChoices() string { return core.AlgorithmChoices() }

// InnerChoices returns the accepted ParseInnerAlgorithm spellings.
func InnerChoices() string { return core.InnerChoices() }

// EdgeOrderChoices returns the accepted ParseEdgeOrder spellings.
func EdgeOrderChoices() string { return core.EdgeOrderChoices() }

// Enumerate runs the configured algorithm and invokes emit once per maximal
// clique. The slice passed to emit is reused between calls; copy it if you
// retain it. emit may be nil to only collect statistics.
//
// Deprecated: Enumerate redoes the O(δm) preprocessing on every call and
// cannot be cancelled or stopped early. Use NewSession and
// Session.Enumerate, which cache the preprocessing across queries and
// accept a context.Context and a stop-capable Visitor.
func Enumerate(g *Graph, opts Options, emit func(clique []int32)) (*Stats, error) {
	return core.Enumerate(g, opts, emit)
}

// Count returns the number of maximal cliques without materialising them.
//
// Deprecated: use NewSession and Session.Count.
func Count(g *Graph, opts Options) (int64, *Stats, error) { return core.Count(g, opts) }

// Collect returns every maximal clique as a fresh slice. Convenient for
// small graphs; large graphs should stream through Enumerate.
//
// Deprecated: use NewSession and Session.Collect.
func Collect(g *Graph, opts Options) ([][]int32, *Stats, error) { return core.Collect(g, opts) }

// Profile captures the structural parameters the paper's analysis depends
// on: the degeneracy δ, the truss parameter τ, the edge density ρ = m/n and
// the h-index.
type Profile struct {
	N, M      int
	Delta     int     // degeneracy δ
	Tau       int     // truss parameter τ (max support at truss-peeling time)
	Rho       float64 // edge density m/n
	HIndex    int
	Triangles int64
}

// ProfileGraph computes a Profile (O(δm) dominated by the truss peeling).
func ProfileGraph(g *Graph) Profile {
	dec := truss.Decompose(g)
	return Profile{
		N:         g.NumVertices(),
		M:         g.NumEdges(),
		Delta:     order.DegeneracyOrdering(g).Value,
		Tau:       dec.Tau,
		Rho:       g.Density(),
		HIndex:    order.HIndex(g),
		Triangles: truss.CountTriangles(g),
	}
}

// HybridConditionHolds reports whether δ ≥ max{3, τ + 3·lnρ/ln3}, the
// condition under which HBBMC's O(δm + τm·3^{τ/3}) bound beats the best
// known O(nδ·3^{δ/3}) (Remarks after Theorem 2).
func (p Profile) HybridConditionHolds() bool {
	if p.Rho <= 0 {
		return p.Delta >= 3
	}
	threshold := float64(p.Tau) + 3*math.Log(p.Rho)/math.Log(3)
	if threshold < 3 {
		threshold = 3
	}
	return float64(p.Delta) >= threshold
}

// GenerateER samples an Erdős–Rényi G(n,m) graph (Appendix D's ER model).
func GenerateER(n, m int, seed int64) *Graph { return gen.ER(n, m, seed) }

// GenerateBA grows a Barabási–Albert graph with k edges per arrival
// (Appendix D's BA model).
func GenerateBA(n, k int, seed int64) *Graph { return gen.BA(n, k, seed) }

// GenerateSBM samples a planted-partition graph with the given number of
// communities of the given size.
func GenerateSBM(communities, size int, pIn, pOut float64, seed int64) *Graph {
	return gen.SBM(gen.SBMConfig{Communities: communities, Size: size, PIn: pIn, POut: pOut}, seed)
}

// GenerateMoonMoser returns the 3^s-maximal-clique worst-case family.
func GenerateMoonMoser(s int) *Graph { return gen.MoonMoser(s) }

// EnumerateParallel is Enumerate with the top-level branches distributed
// over up to `workers` goroutines (0 = Options.Workers, then GOMAXPROCS).
// A dynamic work queue hands out branch chunks — large while the queue is
// full, single branches toward the skewed tail of the ordering — and each
// worker buffers its cliques, flushing batches of Options.EmitBatchSize to
// emit under one lock. emit is therefore never called concurrently, but
// cliques arrive in nondeterministic order and slightly after discovery.
//
// Every ordered algorithm parallelises, including HBBMC at any
// SwitchDepth; only whole-graph BK/BKPivot fall back to the sequential
// driver. Stats.Workers records the effective worker count and
// Stats.ParallelFallback the fallback reason, if any.
//
// Deprecated: the positional workers argument is folded into
// Options.Workers. Use NewSession and Session.Enumerate (or
// Session.EnumerateParallel), which also cache the preprocessing across
// queries and accept a context.Context and a stop-capable Visitor.
func EnumerateParallel(g *Graph, opts Options, workers int, emit func(clique []int32)) (*Stats, error) {
	return core.EnumerateParallel(g, opts, workers, emit)
}

// CountParallel is Count on the parallel driver: it returns the number of
// maximal cliques without materialising them, using up to `workers`
// goroutines (0 = Options.Workers, then GOMAXPROCS).
//
// Deprecated: set Options.Workers and use NewSession with Session.Count.
func CountParallel(g *Graph, opts Options, workers int) (int64, *Stats, error) {
	stats, err := core.EnumerateParallel(g, opts, workers, nil)
	if err != nil {
		if stats != nil {
			return stats.Cliques, stats, err
		}
		return 0, nil, err
	}
	return stats.Cliques, stats, nil
}

// ListKCliques emits every k-clique of g exactly once via the edge-oriented
// EBBkC strategy ([19]) that HBBMC's top level is built on, and returns the
// count. The slice passed to emit is reused; emit may be nil to count only.
func ListKCliques(g *Graph, k int, emit func(clique []int32)) (int64, error) {
	return kclique.List(g, k, emit)
}

// CountKCliques returns the number of k-cliques of g. It is a convenience
// wrapper over Session.CountKCliques with the default options: build a
// Session directly to amortise the preprocessing across queries, pick the
// worker count, or cancel via a context.
func CountKCliques(g *Graph, k int) (int64, error) {
	s, err := core.NewSession(g, core.Defaults())
	if err != nil {
		return 0, err
	}
	n, _, err := s.CountKCliques(context.Background(), k, QueryOptions{})
	return n, err
}
