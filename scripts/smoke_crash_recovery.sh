#!/usr/bin/env bash
# Crash-recovery mced smoke: boot a journaled daemon, stream a large
# enumeration job through a throttled client, kill -9 the daemon
# mid-stream, restart it on the same journal directory, reconnect with
# the client's `?resume_after=` cursor, and assert that the kept prefix
# plus the resumed stream carry the exact clique count with zero
# duplicates — exactly-once delivery across a real crash.
#
# Usage: smoke_crash_recovery.sh
# The mced/mce/mcegen binaries are taken from $BIN (default ./bin).
set -euo pipefail

BIN=${BIN:-bin}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

# A graph whose stream (throttled below) far outlives the kill window.
"$BIN/mcegen" -model er -n 3000 -m 150000 -seed 3 -out "$WORK/g.txt" >/dev/null
"$BIN/mce" -in "$WORK/g.txt" -out "$WORK/ref.txt" 2>/dev/null
WANT=$(wc -l <"$WORK/ref.txt")
echo "smoke_crash_recovery: reference enumeration has $WANT maximal cliques"

wait_port() {
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "smoke_crash_recovery: portfile $1 never appeared" >&2
  exit 1
}

wait_ready() {
  for _ in $(seq 1 150); do
    curl -sf "$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "smoke_crash_recovery: $1/readyz never turned 200" >&2
  exit 1
}

# First life: journal every job, checkpoint after every branch chunk.
"$BIN/mced" -addr 127.0.0.1:0 -portfile "$WORK/p1" -dataset er="$WORK/g.txt" \
  -journal "$WORK/wal" -checkpoint-interval=-1ns 2>"$WORK/a.log" &
MCED=$!
wait_port "$WORK/p1"
A="http://$(cat "$WORK/p1")"
wait_ready "$A"

JOB=$(curl -sf "$A/v1/jobs" -d '{"dataset":"er","mode":"enumerate","workers":2}' | jq -r .id)

# The rate limit keeps the job mid-flight while checkpoint markers
# accumulate in the client's file, so the SIGKILL lands mid-stream.
curl -sN --limit-rate 100k "$A/v1/jobs/$JOB/cliques" >"$WORK/partial.ndjson" &
CURL=$!

for _ in $(seq 1 300); do
  if grep -q '"ckpt"' "$WORK/partial.ndjson" 2>/dev/null &&
    [ "$(grep -c '^{"c":' "$WORK/partial.ndjson" 2>/dev/null || true)" -ge 500 ]; then
    break
  fi
  sleep 0.1
done
grep -q '"ckpt"' "$WORK/partial.ndjson" || {
  echo "smoke_crash_recovery: no checkpoint marker before timeout" >&2
  tail -5 "$WORK/a.log" >&2
  exit 1
}
kill -9 "$MCED"
wait "$CURL" 2>/dev/null || true
tail -1 "$WORK/partial.ndjson" | jq -e '.done? // false' >/dev/null 2>&1 && {
  echo "smoke_crash_recovery: stream finished before the kill — not a crash test" >&2
  exit 1
}

# Client contract: keep only cliques before the last marker, resume after it.
LAST=$(grep -n '"ckpt"' "$WORK/partial.ndjson" | tail -1 | cut -d: -f1)
CURSOR=$(sed -n "${LAST}p" "$WORK/partial.ndjson" | jq -r .ckpt)
head -n "$((LAST - 1))" "$WORK/partial.ndjson" | grep '^{"c":' >"$WORK/kept.ndjson" || true
KEPT=$(wc -l <"$WORK/kept.ndjson")
echo "smoke_crash_recovery: killed daemon mid-stream — kept $KEPT cliques, cursor $CURSOR"

# Second life: same journal, no -dataset flag — replay restores the
# dataset registration and the interrupted job. The default checkpoint
# interval keeps the resumed run from fsyncing on every branch chunk.
"$BIN/mced" -addr 127.0.0.1:0 -portfile "$WORK/p2" \
  -journal "$WORK/wal" 2>"$WORK/b.log" &
wait_port "$WORK/p2"
B="http://$(cat "$WORK/p2")"
wait_ready "$B"

curl -sfN "$B/v1/jobs/$JOB/cliques?resume_after=$CURSOR" >"$WORK/rest.ndjson" || {
  echo "smoke_crash_recovery: resume stream failed" >&2
  tail -5 "$WORK/b.log" >&2
  exit 1
}
tail -1 "$WORK/rest.ndjson" | jq -e '.done and .state == "done"' >/dev/null
grep '^{"c":' "$WORK/rest.ndjson" >"$WORK/restc.ndjson" || true

TOTAL=$(cat "$WORK/kept.ndjson" "$WORK/restc.ndjson" | wc -l)
DUPES=$(cat "$WORK/kept.ndjson" "$WORK/restc.ndjson" | sort | uniq -d | wc -l)
if [ "$TOTAL" -ne "$WANT" ]; then
  echo "smoke_crash_recovery: kept+resumed carried $TOTAL cliques, want $WANT" >&2
  exit 1
fi
if [ "$DUPES" -ne 0 ]; then
  echo "smoke_crash_recovery: $DUPES duplicate cliques across the crash" >&2
  exit 1
fi

# The trailer's logical total folds the durable pre-crash prefix back in,
# and the journal/resume metrics must show the machinery actually ran.
tail -1 "$WORK/rest.ndjson" | jq -e --argjson want "$WANT" '.stats.cliques == $want' >/dev/null
curl -sf "$B/metrics?format=json" | jq -e --argjson c "$CURSOR" \
  '.mced_resume_jobs_restored >= 1 and
   .mced_journal_records_appended >= 1 and
   .mced_resume_branches_skipped >= $c' >/dev/null

echo "smoke_crash_recovery: OK — $TOTAL cliques exactly once across kill -9 (cursor $CURSOR)"
