#!/usr/bin/env bash
# Multi-node mced smoke: boot two worker daemons and one coordinator over
# the same dataset, stream one sharded enumeration job through the
# coordinator, kill a worker while shards are in flight, and assert the
# merged stream still completes with the exact clique count (the survivor
# absorbs the re-dispatches; /metrics must show them).
#
# Usage: smoke_distributed.sh <graph-file> <expected-clique-count>
# The mced binary is taken from $BIN (default ./bin).
set -euo pipefail

GRAPH=${1:?usage: smoke_distributed.sh <graph-file> <expected-clique-count>}
WANT=${2:?usage: smoke_distributed.sh <graph-file> <expected-clique-count>}
BIN=${BIN:-bin}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

wait_port() {
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "smoke_distributed: portfile $1 never appeared" >&2
  exit 1
}

"$BIN/mced" -addr 127.0.0.1:0 -portfile "$WORK/w1" -dataset er="$GRAPH" 2>"$WORK/w1.log" &
W1=$!
"$BIN/mced" -addr 127.0.0.1:0 -portfile "$WORK/w2" -dataset er="$GRAPH" 2>"$WORK/w2.log" &
wait_port "$WORK/w1"
wait_port "$WORK/w2"

# Small shards + serial dispatch stretch the job so the worker kill lands
# mid-flight instead of after a sub-second sprint.
"$BIN/mced" -addr 127.0.0.1:0 -portfile "$WORK/co" -dataset er="$GRAPH" \
  -peers "http://$(cat "$WORK/w1"),http://$(cat "$WORK/w2")" \
  -shard-branches 64 -shard-inflight 1 -shard-retries 5 2>"$WORK/co.log" &
wait_port "$WORK/co"
PORT=$(cat "$WORK/co")

curl -sf "http://$PORT/v1/info" | jq -e '(.peers | length) == 2 and .worker_slots >= 1' >/dev/null

JOB=$(curl -sf "http://$PORT/v1/jobs" -d '{"dataset":"er","mode":"enumerate"}' | jq -r .id)
curl -sN "http://$PORT/v1/jobs/$JOB/cliques" >"$WORK/stream.ndjson" &
CURL=$!

# Wait until the fan-out is demonstrably under way, then kill one worker.
for _ in $(seq 1 100); do
  d=$(curl -sf "http://$PORT/metrics?format=json" | jq .mced_shards_dispatched)
  [ "$d" -ge 10 ] && break
  sleep 0.1
done
echo "smoke_distributed: killing worker 1 after $d dispatched shards"
kill -9 "$W1"

wait "$CURL"
tail -1 "$WORK/stream.ndjson" | jq -e '.done and .state == "done"' >/dev/null
GOT=$(grep -c '^{"c":' "$WORK/stream.ndjson")
if [ "$GOT" -ne "$WANT" ]; then
  echo "smoke_distributed: merged stream carried $GOT cliques, want $WANT" >&2
  tail -5 "$WORK/co.log" >&2
  exit 1
fi
curl -sf "http://$PORT/metrics?format=json" |
  jq -e '.mced_shards_retried >= 1 and .mced_shards_dispatched >= 10 and .mced_jobs_done >= 1' >/dev/null
echo "smoke_distributed: OK — $GOT cliques through 2-then-1 workers, re-dispatch confirmed"
