#!/usr/bin/env bash
# check_metrics.sh — validate a Prometheus text-exposition scrape of mced's
# GET /metrics. Reads the exposition from the file given as $1 (or stdin)
# and asserts:
#
#   * every sample line parses as `name{labels} value` with a numeric value;
#   * every metric family has exactly one `# TYPE` line, emitted before the
#     family's first sample;
#   * every histogram family carries a `+Inf` bucket, a `_sum` and a
#     `_count`, and its cumulative buckets are monotonically non-decreasing
#     in `le` order, ending equal to `_count`;
#   * the core serving histograms are present: job duration, queue wait,
#     per-phase time and shard RTT.
#
# Run by the CI smoke job against a live daemon; run locally with
#   curl -s http://127.0.0.1:8399/metrics | ./scripts/check_metrics.sh
set -euo pipefail

input=${1:-/dev/stdin}

awk '
function fail(msg) { printf "check_metrics: line %d: %s\n", NR, msg; bad = 1 }
function base(name,  b) {
  # family name of a sample: strip a histogram suffix, but only when the
  # stripped name is a declared histogram — plain counters may themselves
  # end in _count (e.g. mced_jobs_type_count, jobs of type "count")
  b = name; sub(/_bucket$/, "", b)
  if (b != name && typed[b] == "histogram") return b
  b = name; sub(/_sum$/, "", b)
  if (b != name && typed[b] == "histogram") return b
  b = name; sub(/_count$/, "", b)
  if (b != name && typed[b] == "histogram") return b
  return name
}
/^#/ {
  if ($2 == "TYPE") {
    if ($3 in typed) fail("duplicate # TYPE for " $3)
    typed[$3] = $4
  }
  next
}
/^$/ { next }
{
  # sample line: name, optional {labels}, numeric value
  if (match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/) == 0) { fail("unparseable sample: " $0); next }
  name = substr($0, 1, RLENGTH)
  rest = substr($0, RLENGTH + 1)
  labels = ""
  if (substr(rest, 1, 1) == "{") {
    close_idx = index(rest, "}")
    if (close_idx == 0) { fail("unclosed label set: " $0); next }
    labels = substr(rest, 2, close_idx - 2)
    rest = substr(rest, close_idx + 1)
  }
  gsub(/^[ \t]+|[ \t]+$/, "", rest)
  if (rest !~ /^[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$/) { fail("non-numeric value " rest " for " name); next }
  fam = base(name)
  if (!(fam in typed)) fail("sample for " name " before its # TYPE line")
  seen[fam] = 1
  if (typed[fam] == "histogram") {
    # series key: the labels minus le, so labelled histogram variants
    # (e.g. phase="pivot") are each checked independently
    lbl = labels
    if (!sub(/,le="[^"]*"/, "", lbl)) sub(/le="[^"]*",?/, "", lbl)
    key = fam "{" lbl "}"
    if (name ~ /_bucket$/) {
      if (match(labels, /le="[^"]*"/) == 0) { fail("bucket without le label: " $0); next }
      le = substr(labels, RSTART + 4, RLENGTH - 5)
      if (le == "+Inf") { has_inf[key] = 1; inf_val[key] = rest + 0 }
      if (key in last_bucket && rest + 0 < last_bucket[key])
        fail("non-monotone cumulative buckets in " key " at le=" le)
      last_bucket[key] = rest + 0
    } else if (name ~ /_sum$/)   { has_sum[key] = 1 }
    else if (name ~ /_count$/) { has_count[key] = 1; count_val[key] = rest + 0 }
    else fail("histogram family " fam " has a bare sample " name)
  }
}
END {
  for (key in last_bucket) {
    if (!(key in has_inf))   { printf "check_metrics: histogram %s lacks a +Inf bucket\n", key; bad = 1 }
    if (!(key in has_sum))   { printf "check_metrics: histogram %s lacks _sum\n", key; bad = 1 }
    if (!(key in has_count)) { printf "check_metrics: histogram %s lacks _count\n", key; bad = 1 }
    if ((key in has_inf) && (key in has_count) && inf_val[key] != count_val[key])
      { printf "check_metrics: histogram %s: +Inf bucket %d != _count %d\n", key, inf_val[key], count_val[key]; bad = 1 }
  }
  n = split("mced_job_duration_seconds mced_queue_wait_seconds mced_phase_seconds mced_shard_rtt_seconds", req, " ")
  for (i = 1; i <= n; i++) {
    if (!(req[i] in seen)) { printf "check_metrics: required histogram %s missing\n", req[i]; bad = 1 }
    else if (typed[req[i]] != "histogram") { printf "check_metrics: %s is %s, want histogram\n", req[i], typed[req[i]]; bad = 1 }
  }
  if (!length(seen)) { print "check_metrics: no samples at all"; bad = 1 }
  if (bad) exit 1
  printf "check_metrics: OK (%d families)\n", length(seen)
}
' "$input"
