#!/usr/bin/env bash
# check_docs.sh — assert the README's flag tables match the actual flag
# sets of mce and mced, in both directions:
#
#   * every flag the binary defines (flag.FlagSet output via -h) must
#     appear as `-flag` in the README section for that tool;
#   * every `-flag` the README section documents must exist in the binary.
#
# Run by the CI lint job; run locally with ./scripts/check_docs.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

check() {
  local tool=$1 section=$2
  local bin actual documented
  bin=$(mktemp -t "check_docs_${tool}.XXXXXX")
  go build -o "$bin" "./cmd/$tool"
  # flag.PrintDefaults writes "  -name ..." lines (one per flag) to stderr
  # when -h is passed; the exit status 2 is expected (hence the || true
  # under set -e -o pipefail).
  actual=$("$bin" -h 2>&1 | awk '/^  -/{print $1}' | sort -u || true)
  rm -f "$bin"
  if [ -z "$actual" ]; then
    echo "check_docs: could not extract any flags from $tool -h" >&2
    fail=1
    return
  fi
  # README flags: the `-flag` tokens between the section heading and the
  # next heading.
  documented=$(awk -v sec="$section" '
    index($0, sec) == 1 { insec = 1; next }
    insec && /^#/       { insec = 0 }
    insec               { print }
  ' README.md | grep -oE '`-[a-z-]+`' | tr -d '`' | sort -u || true)
  if [ -z "$documented" ]; then
    echo "check_docs: README section \"$section\" not found or empty" >&2
    fail=1
    return
  fi
  local f
  for f in $actual; do
    if ! grep -qx -- "$f" <<<"$documented"; then
      echo "check_docs: $tool defines $f but the README section \"$section\" does not document it" >&2
      fail=1
    fi
  done
  for f in $documented; do
    if ! grep -qx -- "$f" <<<"$actual"; then
      echo "check_docs: README documents $f under \"$section\" but $tool does not define it" >&2
      fail=1
    fi
  done
}

check mce '### `mce` flags'
check mced '### `mced` flags'

if [ "$fail" -eq 0 ]; then
  echo "check_docs: README flag tables match the mce/mced flag sets"
fi
exit "$fail"
