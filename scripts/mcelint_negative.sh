#!/usr/bin/env bash
# Negative test for the mcelint suite: seed a throwaway package with known
# violations and require the linter to reject it. This guards the gate
# itself — a broken package loader or an accidentally disabled analyzer
# exits 0 on the real tree exactly like a healthy run, and only a seeded
# failure can tell the two apart.
set -euo pipefail
cd "$(dirname "$0")/.."

seed=internal/mcelintseed
out=$(mktemp)
trap 'rm -rf "$seed" "$out"' EXIT
mkdir -p "$seed"
cat > "$seed/seed.go" <<'EOF'
// Package mcelintseed exists only for the duration of the mcelint negative
// test (scripts/mcelint_negative.sh), which deletes it again on exit. It
// must never be committed.
package mcelintseed

import "sync"

// escape allocates inside a //hbbmc:noalloc function — the seeded noalloc
// violation.
//
//hbbmc:noalloc
func escape(n int) []int {
	return make([]int, n)
}

type counter struct {
	mu sync.Mutex
	//hbbmc:guardedby mu
	n int
}

// bump reads a guarded field outside the critical section — the seeded
// lockedfields violation.
func bump(c *counter) int {
	return c.n
}
EOF

if go tool mcelint "./$seed" >"$out" 2>&1; then
	echo "FAIL: mcelint accepted a package with seeded violations:" >&2
	cat "$out" >&2
	exit 1
fi
grep -q 'noalloc' "$out" || { echo "FAIL: seeded noalloc violation not reported:" >&2; cat "$out" >&2; exit 1; }
grep -q 'guarded by' "$out" || { echo "FAIL: seeded lockedfields violation not reported:" >&2; cat "$out" >&2; exit 1; }
echo "mcelint negative test passed: seeded violations rejected"
