package hbbmc_test

import (
	"fmt"
	"sort"

	hbbmc "github.com/graphmining/hbbmc"
)

// ExampleEnumerate shows the basic streaming API on a small graph.
func ExampleEnumerate() {
	b := hbbmc.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()

	var cliques [][]int32
	_, _ = hbbmc.Enumerate(g, hbbmc.DefaultOptions(), func(c []int32) {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		cliques = append(cliques, cc)
	})
	sort.Slice(cliques, func(i, j int) bool { return fmt.Sprint(cliques[i]) < fmt.Sprint(cliques[j]) })
	for _, c := range cliques {
		fmt.Println(c)
	}
	// Output:
	// [0 1 2]
	// [2 3]
}

// ExampleCount compares two engines on the same graph.
func ExampleCount() {
	g := hbbmc.GenerateMoonMoser(4) // 3^4 = 81 maximal cliques
	hybrid, _, _ := hbbmc.Count(g, hbbmc.DefaultOptions())
	classic, _, _ := hbbmc.Count(g, hbbmc.Options{Algorithm: hbbmc.BKDegen})
	fmt.Println(hybrid, classic)
	// Output:
	// 81 81
}

// ExampleProfileGraph inspects the structural parameters the paper's
// complexity condition depends on.
func ExampleProfileGraph() {
	g := hbbmc.GenerateMoonMoser(3)
	p := hbbmc.ProfileGraph(g)
	fmt.Printf("n=%d m=%d δ=%d τ=%d\n", p.N, p.M, p.Delta, p.Tau)
	// Output:
	// n=9 m=27 δ=6 τ=3
}

// ExampleCountKCliques lists fixed-size cliques with the EBBkC substrate.
func ExampleCountKCliques() {
	g := hbbmc.GenerateMoonMoser(3) // complete 3-partite, parts of 3
	triangles, _ := hbbmc.CountKCliques(g, 3)
	fmt.Println(triangles) // C(3,3)·3^3
	// Output:
	// 27
}
