package hbbmc_test

import (
	"context"
	"errors"
	"fmt"
	"sort"

	hbbmc "github.com/graphmining/hbbmc"
)

// ExampleNewSession shows the session API: preprocessing is computed once,
// then any number of queries — here a range-over-func iteration and a
// count — reuse it.
func ExampleNewSession() {
	b := hbbmc.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()

	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	var cliques [][]int32
	for c := range sess.Cliques(ctx) {
		cc := append([]int32(nil), c...) // the yielded slice is reused
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		cliques = append(cliques, cc)
	}
	sort.Slice(cliques, func(i, j int) bool { return fmt.Sprint(cliques[i]) < fmt.Sprint(cliques[j]) })
	for _, c := range cliques {
		fmt.Println(c)
	}

	// The second query skips preprocessing entirely.
	n, stats, _ := sess.Count(ctx)
	fmt.Println(n, stats.OrderingTime)
	// Output:
	// [0 1 2]
	// [2 3]
	// 2 0s
}

// ExampleSession_Enumerate shows early termination by clique budget: the
// run stops with ErrStopped once Options.MaxCliques cliques were reported.
func ExampleSession_Enumerate() {
	g := hbbmc.GenerateMoonMoser(4) // 81 maximal cliques
	opts := hbbmc.DefaultOptions()
	opts.MaxCliques = 5
	sess, err := hbbmc.NewSession(g, opts)
	if err != nil {
		panic(err)
	}
	delivered := 0
	_, err = sess.Enumerate(context.Background(), func(c []int32) bool {
		delivered++
		return true // returning false would also stop the run
	})
	fmt.Println(delivered, errors.Is(err, hbbmc.ErrStopped))
	// Output:
	// 5 true
}

// ExampleEnumerate shows the deprecated one-shot streaming API, kept as a
// thin wrapper over a throwaway session. New code should use NewSession
// (cached preprocessing, context cancellation, early stop).
func ExampleEnumerate() {
	b := hbbmc.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()

	var cliques [][]int32
	_, _ = hbbmc.Enumerate(g, hbbmc.DefaultOptions(), func(c []int32) {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		cliques = append(cliques, cc)
	})
	sort.Slice(cliques, func(i, j int) bool { return fmt.Sprint(cliques[i]) < fmt.Sprint(cliques[j]) })
	for _, c := range cliques {
		fmt.Println(c)
	}
	// Output:
	// [0 1 2]
	// [2 3]
}

// ExampleCount compares two engines on the same graph.
func ExampleCount() {
	g := hbbmc.GenerateMoonMoser(4) // 3^4 = 81 maximal cliques
	hybrid, _, _ := hbbmc.Count(g, hbbmc.DefaultOptions())
	classic, _, _ := hbbmc.Count(g, hbbmc.Options{Algorithm: hbbmc.BKDegen})
	fmt.Println(hybrid, classic)
	// Output:
	// 81 81
}

// ExampleProfileGraph inspects the structural parameters the paper's
// complexity condition depends on.
func ExampleProfileGraph() {
	g := hbbmc.GenerateMoonMoser(3)
	p := hbbmc.ProfileGraph(g)
	fmt.Printf("n=%d m=%d δ=%d τ=%d\n", p.N, p.M, p.Delta, p.Tau)
	// Output:
	// n=9 m=27 δ=6 τ=3
}

// ExampleCountKCliques counts fixed-size cliques; the one-shot wrapper
// runs Session.CountKCliques on the session kernels under the default
// options.
func ExampleCountKCliques() {
	g := hbbmc.GenerateMoonMoser(3) // complete 3-partite, parts of 3
	triangles, _ := hbbmc.CountKCliques(g, 3)
	fmt.Println(triangles) // C(3,3)·3^3
	// Output:
	// 27
}

// Example_maxClique solves the exact maximum-clique problem on a session:
// branch and bound over the same cached branches enumeration uses, with
// the witness clique as the result.
func Example_maxClique() {
	b := hbbmc.NewBuilder(6)
	// A 4-clique {0,1,2,3} plus a triangle {3,4,5} hanging off it.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(3, 5)
	b.AddEdge(4, 5)
	g := b.MustBuild()

	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		panic(err)
	}
	clique, stats, err := sess.MaxClique(context.Background(), hbbmc.QueryOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(clique, stats.MaxCliqueSize)
	// Output:
	// [0 1 2 3] 4
}

// Example_topK asks a session for the k largest maximal cliques, returned
// size-descending (ties broken lexicographically).
func Example_topK() {
	b := hbbmc.NewBuilder(7)
	// A 4-clique, a separate triangle, and one stray edge.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	b.AddEdge(4, 5)
	b.AddEdge(4, 6)
	b.AddEdge(5, 6)
	g := b.MustBuild()

	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		panic(err)
	}
	top, _, err := sess.TopK(context.Background(), 2, hbbmc.QueryOptions{})
	if err != nil {
		panic(err)
	}
	for _, c := range top {
		fmt.Println(c)
	}
	// Output:
	// [0 1 2 3]
	// [4 5 6]
}
