package hbbmc_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
)

// sessionTestGraph is shared by the session tests: big enough that a
// cancelled run is visibly partial (17k+ maximal cliques over 20k top-level
// branches), small enough to enumerate fully in milliseconds.
func sessionTestGraph() *hbbmc.Graph { return hbbmc.GenerateER(2000, 20000, 1) }

// withTestProcs raises GOMAXPROCS so the parallel driver actually runs
// multi-worker on single-core CI machines (resolveWorkers clamps to
// GOMAXPROCS).
func withTestProcs(t *testing.T, workers int) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < workers {
		runtime.GOMAXPROCS(workers)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// orderedAlgorithms are the frameworks whose top level is an ordered split
// — every algorithm that supports both drivers and mid-run cancellation at
// top-branch granularity.
var orderedAlgorithms = []hbbmc.Algorithm{
	hbbmc.BKRef, hbbmc.BKDegen, hbbmc.BKDegree, hbbmc.BKRcd, hbbmc.BKFac,
	hbbmc.EBBMC, hbbmc.HBBMC,
}

func TestSessionReuseMatchesOneShot(t *testing.T) {
	g := sessionTestGraph()
	want, _, err := hbbmc.Count(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sess.PrepTime() <= 0 {
		t.Error("PrepTime should record the cached preprocessing cost")
	}
	for q := 0; q < 3; q++ {
		n, stats, err := sess.Count(context.Background())
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		if n != want {
			t.Fatalf("query %d counted %d cliques, one-shot Count found %d", q, n, want)
		}
		if stats.OrderingTime != 0 {
			t.Fatalf("query %d spent %v ordering; a session query must skip preprocessing", q, stats.OrderingTime)
		}
		if stats.Tau == 0 {
			t.Fatalf("query %d lost the cached τ", q)
		}
	}
}

func TestSessionCollectAndIterator(t *testing.T) {
	g := hbbmc.GenerateER(300, 2400, 3)
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	all, stats, err := sess.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(all)) != stats.Cliques {
		t.Fatalf("Collect returned %d cliques, Stats counted %d", len(all), stats.Cliques)
	}
	var iterated int64
	for c := range sess.Cliques(context.Background()) {
		if len(c) == 0 {
			t.Fatal("iterator yielded an empty clique")
		}
		iterated++
	}
	if iterated != stats.Cliques {
		t.Fatalf("iterator yielded %d cliques, want %d", iterated, stats.Cliques)
	}
	// Breaking out of the range loop must stop the run without yielding more.
	var taken int
	for range sess.Cliques(context.Background()) {
		taken++
		if taken == 3 {
			break
		}
	}
	if taken != 3 {
		t.Fatalf("broke after 3 cliques but saw %d", taken)
	}
}

func TestSessionCancelMidRun(t *testing.T) {
	withTestProcs(t, 4)
	g := sessionTestGraph()
	for _, algo := range orderedAlgorithms {
		for _, workers := range []int{1, 4} {
			t.Run(algo.String()+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				opts := hbbmc.Options{Algorithm: algo, ET: 3, GR: true, Workers: workers, EmitBatchSize: 1}
				sess, err := hbbmc.NewSession(g, opts)
				if err != nil {
					t.Fatal(err)
				}
				total, _, err := sess.Count(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				before := runtime.NumGoroutine()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var seen atomic.Int64
				stats, err := sess.Enumerate(ctx, func(c []int32) bool {
					if seen.Add(1) == 25 {
						cancel()
					}
					return true
				})
				if err == nil || !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled run returned %v, want context.Canceled", err)
				}
				if stats == nil {
					t.Fatal("cancelled run must return partial Stats")
				}
				if stats.Cliques == 0 || stats.Cliques >= total {
					t.Fatalf("partial run reported %d cliques (total %d); cancellation had no effect", stats.Cliques, total)
				}
				waitForGoroutines(t, before)
			})
		}
	}
}

func TestSessionDeadlineExceeded(t *testing.T) {
	withTestProcs(t, 4)
	g := sessionTestGraph()
	opts := hbbmc.DefaultOptions()
	opts.Workers = 4
	sess, err := hbbmc.NewSession(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	before := runtime.NumGoroutine()
	n, stats, err := sess.Count(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}
	if n != 0 || stats.Cliques != 0 {
		t.Fatalf("expired-deadline run still counted %d cliques", n)
	}
	waitForGoroutines(t, before)
}

func TestMaxCliquesEquivalenceAcrossWorkers(t *testing.T) {
	withTestProcs(t, 8)
	g := sessionTestGraph()
	total, _, err := hbbmc.Count(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int64{1, 7, 1000, total, total + 5} {
		for _, workers := range []int{1, 2, 8} {
			opts := hbbmc.DefaultOptions()
			opts.Workers = workers
			opts.MaxCliques = limit
			sess, err := hbbmc.NewSession(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Counting path (no visitor).
			n, _, err := sess.Count(context.Background())
			wantN, wantStop := limit, true
			if limit >= total {
				wantN, wantStop = total, false
			}
			if n != wantN {
				t.Fatalf("limit=%d workers=%d: counted %d cliques, want %d", limit, workers, n, wantN)
			}
			if wantStop != errors.Is(err, hbbmc.ErrStopped) {
				t.Fatalf("limit=%d workers=%d: err=%v, want ErrStopped=%v", limit, workers, err, wantStop)
			}
			// Streaming path: exactly the same number must be delivered.
			var delivered atomic.Int64
			stats, err := sess.Enumerate(context.Background(), func([]int32) bool {
				delivered.Add(1)
				return true
			})
			if delivered.Load() != wantN || stats.Cliques != wantN {
				t.Fatalf("limit=%d workers=%d: delivered %d cliques (stats %d), want %d",
					limit, workers, delivered.Load(), stats.Cliques, wantN)
			}
			if wantStop != errors.Is(err, hbbmc.ErrStopped) {
				t.Fatalf("limit=%d workers=%d (streaming): err=%v, want ErrStopped=%v", limit, workers, err, wantStop)
			}
		}
	}
}

func TestVisitorStop(t *testing.T) {
	withTestProcs(t, 4)
	g := sessionTestGraph()
	for _, workers := range []int{1, 4} {
		opts := hbbmc.DefaultOptions()
		opts.Workers = workers
		opts.EmitBatchSize = 1
		sess, err := hbbmc.NewSession(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		var calls atomic.Int64
		var afterStop atomic.Int64
		var stopped atomic.Bool
		stats, err := sess.Enumerate(context.Background(), func([]int32) bool {
			if stopped.Load() {
				afterStop.Add(1)
			}
			if calls.Add(1) >= 10 {
				stopped.Store(true)
				return false
			}
			return true
		})
		if !errors.Is(err, hbbmc.ErrStopped) {
			t.Fatalf("workers=%d: visitor stop returned %v, want ErrStopped", workers, err)
		}
		if afterStop.Load() != 0 {
			t.Fatalf("workers=%d: %d visitor calls after it returned false", workers, afterStop.Load())
		}
		if calls.Load() != 10 {
			t.Fatalf("workers=%d: visitor called %d times, want 10", workers, calls.Load())
		}
		if stats.Cliques != calls.Load() {
			t.Fatalf("workers=%d: stats reported %d cliques but %d were delivered", workers, stats.Cliques, calls.Load())
		}
	}
}

// TestVisitorStopDuringETBurst pins the "no Visitor calls after false"
// contract on the hardest path: Moon–Moser graphs close branches through
// the early-termination construction, which emits many cliques from one
// recursion frame where no entry-level stop check can intervene.
func TestVisitorStopDuringETBurst(t *testing.T) {
	g := hbbmc.GenerateMoonMoser(4) // 81 maximal cliques, ET-heavy
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	stats, err := sess.Enumerate(context.Background(), func([]int32) bool {
		calls++
		return false // stop immediately
	})
	if !errors.Is(err, hbbmc.ErrStopped) {
		t.Fatalf("visitor stop returned %v, want ErrStopped", err)
	}
	if calls != 1 {
		t.Fatalf("visitor called %d times after returning false on the first", calls)
	}
	if stats.Cliques != 1 {
		t.Fatalf("stats counted %d cliques after the stop, want 1", stats.Cliques)
	}
	// Breaking out of the range iterator rides the same path and must not
	// trip the range-func "continued iteration after false" panic.
	taken := 0
	for range sess.Cliques(context.Background()) {
		taken++
		break
	}
	if taken != 1 {
		t.Fatalf("iterator yielded %d cliques after break, want 1", taken)
	}
}

func TestSessionConcurrentQueries(t *testing.T) {
	g := sessionTestGraph()
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sess.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	counts := make([]int64, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counts[i], _, errs[i] = sess.Count(context.Background())
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("concurrent query %d: %v", i, errs[i])
		}
		if counts[i] != want {
			t.Fatalf("concurrent query %d counted %d, want %d", i, counts[i], want)
		}
	}
}

// waitForGoroutines asserts the goroutine count returns to the pre-run
// baseline (with slack for runtime housekeeping), i.e. no worker leaked.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before the run", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkSessionReuse contrasts a cold Count (preprocessing every call)
// with repeated queries on a cached Session — the acceptance benchmark for
// the session API. The warm path must skip reduction/ordering entirely
// (Stats.OrderingTime == 0) and run measurably faster.
func BenchmarkSessionReuse(b *testing.B) {
	g := hbbmc.GenerateER(5000, 100000, 7)
	opts := hbbmc.DefaultOptions()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := hbbmc.Count(g, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		sess, err := hbbmc.NewSession(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, stats, err := sess.Count(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if stats.OrderingTime != 0 {
				b.Fatalf("warm query spent %v ordering", stats.OrderingTime)
			}
		}
	})
}
