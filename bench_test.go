package hbbmc_test

// One benchmark per table and figure of the paper's evaluation, runnable
// with `go test -bench=. -benchmem`. Each benchmark exercises the exact
// algorithm grid of its table on a representative subset of the stand-in
// datasets (the full 16-dataset sweep is `go run ./cmd/mcebench -all`).

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/dataset"
)

// benchGraph returns the (process-cached) stand-in graph for a dataset code.
func benchGraph(b *testing.B, name string) *hbbmc.Graph {
	b.Helper()
	spec, ok := dataset.ByName(name)
	if !ok {
		b.Fatalf("unknown dataset %s", name)
	}
	return spec.Build()
}

func runCount(b *testing.B, g *hbbmc.Graph, opts hbbmc.Options) {
	b.Helper()
	b.ReportAllocs()
	var cliques int64
	for i := 0; i < b.N; i++ {
		n, _, err := hbbmc.Count(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		cliques = n
	}
	b.ReportMetric(float64(cliques), "cliques")
}

// --- Pivot selection ------------------------------------------------------

// BenchmarkPivotSelect drives the workload most sensitive to the fused
// pivot-selection kernels: BK_Degen with ET and GR disabled spends almost
// all of its enumeration inside the per-node pivot scans (one fused
// intersect+popcount per candidate per node). Kernel regressions that the
// end-to-end gate would smear across phases show up here directly; the
// word-level microbenchmarks live in internal/bitset (BenchmarkKernel*).
func BenchmarkPivotSelect(b *testing.B) {
	g := benchGraph(b, "NA")
	runCount(b, g, hbbmc.Options{Algorithm: hbbmc.BKDegen})
}

// --- Table I: dataset statistics -----------------------------------------

func BenchmarkTable1Stats(b *testing.B) {
	g := benchGraph(b, "NA")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := hbbmc.ProfileGraph(g)
		if p.Delta == 0 {
			b.Fatal("degenerate profile")
		}
	}
}

// --- Table II: HBBMC++ vs the four baselines ------------------------------

func benchTable2(b *testing.B, opts hbbmc.Options) {
	for _, ds := range []string{"NA", "WE", "YO"} {
		g := benchGraph(b, ds)
		b.Run(ds, func(b *testing.B) { runCount(b, g, opts) })
	}
}

func BenchmarkTable2_HBBMCpp(b *testing.B) {
	benchTable2(b, hbbmc.Options{Algorithm: hbbmc.HBBMC, ET: 3, GR: true})
}
func BenchmarkTable2_RRef(b *testing.B) {
	benchTable2(b, hbbmc.Options{Algorithm: hbbmc.BKRef, GR: true})
}
func BenchmarkTable2_RDegen(b *testing.B) {
	benchTable2(b, hbbmc.Options{Algorithm: hbbmc.BKDegen, GR: true})
}
func BenchmarkTable2_RRcd(b *testing.B) {
	benchTable2(b, hbbmc.Options{Algorithm: hbbmc.BKRcd, GR: true})
}
func BenchmarkTable2_RFac(b *testing.B) {
	benchTable2(b, hbbmc.Options{Algorithm: hbbmc.BKFac, GR: true})
}

// --- Table III: ablation and hybrid inner engines --------------------------

func BenchmarkTable3_HBBMCplus(b *testing.B) { // no ET
	runCount(b, benchGraph(b, "NA"), hbbmc.Options{Algorithm: hbbmc.HBBMC, GR: true})
}
func BenchmarkTable3_RefPP(b *testing.B) {
	runCount(b, benchGraph(b, "NA"), hbbmc.Options{Algorithm: hbbmc.HBBMC, Inner: hbbmc.InnerRef, ET: 3, GR: true})
}
func BenchmarkTable3_RcdPP(b *testing.B) {
	runCount(b, benchGraph(b, "NA"), hbbmc.Options{Algorithm: hbbmc.HBBMC, Inner: hbbmc.InnerRcd, ET: 3, GR: true})
}
func BenchmarkTable3_FacPP(b *testing.B) {
	runCount(b, benchGraph(b, "NA"), hbbmc.Options{Algorithm: hbbmc.HBBMC, Inner: hbbmc.InnerFac, ET: 3, GR: true})
}

// --- Table IV: switch depth d ----------------------------------------------

func BenchmarkTable4_Depth1(b *testing.B) {
	runCount(b, benchGraph(b, "NA"), hbbmc.Options{Algorithm: hbbmc.HBBMC, SwitchDepth: 1, ET: 3, GR: true})
}
func BenchmarkTable4_Depth2(b *testing.B) {
	runCount(b, benchGraph(b, "NA"), hbbmc.Options{Algorithm: hbbmc.HBBMC, SwitchDepth: 2, ET: 3, GR: true})
}
func BenchmarkTable4_Depth3(b *testing.B) {
	runCount(b, benchGraph(b, "NA"), hbbmc.Options{Algorithm: hbbmc.HBBMC, SwitchDepth: 3, ET: 3, GR: true})
}

// --- Table V: early-termination threshold t --------------------------------

func benchTable5(b *testing.B, t int) {
	runCount(b, benchGraph(b, "FB"), hbbmc.Options{Algorithm: hbbmc.HBBMC, ET: t, GR: true})
}

func BenchmarkTable5_T0(b *testing.B) { benchTable5(b, 0) }
func BenchmarkTable5_T1(b *testing.B) { benchTable5(b, 1) }
func BenchmarkTable5_T2(b *testing.B) { benchTable5(b, 2) }
func BenchmarkTable5_T3(b *testing.B) { benchTable5(b, 3) }

// --- Table VI: edge orderings ----------------------------------------------

func BenchmarkTable6_Truss(b *testing.B) {
	runCount(b, benchGraph(b, "WE"), hbbmc.Options{Algorithm: hbbmc.HBBMC, ET: 3, GR: true})
}
func BenchmarkTable6_VBBMCdgn(b *testing.B) {
	runCount(b, benchGraph(b, "WE"), hbbmc.Options{Algorithm: hbbmc.BKDegen, ET: 3, GR: true})
}
func BenchmarkTable6_HBBMCdgn(b *testing.B) {
	runCount(b, benchGraph(b, "WE"), hbbmc.Options{Algorithm: hbbmc.HBBMC, EdgeOrder: hbbmc.EdgeOrderDegeneracy, ET: 3, GR: true})
}
func BenchmarkTable6_HBBMCmdg(b *testing.B) {
	runCount(b, benchGraph(b, "WE"), hbbmc.Options{Algorithm: hbbmc.HBBMC, EdgeOrder: hbbmc.EdgeOrderMinDegree, ET: 3, GR: true})
}

// --- Figure 5: synthetic sweeps ---------------------------------------------

var (
	figGraphsOnce sync.Once
	erSmall       *hbbmc.Graph // Figure 5(a) point
	baSmall       *hbbmc.Graph // Figure 5(b) point
	erDense       *hbbmc.Graph // Figure 5(c) point
	baDense       *hbbmc.Graph // Figure 5(d) point
)

func figGraphs() {
	figGraphsOnce.Do(func() {
		erSmall = hbbmc.GenerateER(5000, 5000*20, 1)
		baSmall = hbbmc.GenerateBA(5000, 20, 1)
		erDense = hbbmc.GenerateER(2000, 2000*40, 2)
		baDense = hbbmc.GenerateBA(2000, 40, 2)
	})
}

func benchFigure(b *testing.B, g *hbbmc.Graph) {
	for _, cfg := range []struct {
		name string
		opts hbbmc.Options
	}{
		{"HBBMCpp", hbbmc.Options{Algorithm: hbbmc.HBBMC, ET: 3, GR: true}},
		{"RDegen", hbbmc.Options{Algorithm: hbbmc.BKDegen, GR: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) { runCount(b, g, cfg.opts) })
	}
}

func BenchmarkFigure5a_ER(b *testing.B)      { figGraphs(); benchFigure(b, erSmall) }
func BenchmarkFigure5b_BA(b *testing.B)      { figGraphs(); benchFigure(b, baSmall) }
func BenchmarkFigure5c_ERrho40(b *testing.B) { figGraphs(); benchFigure(b, erDense) }
func BenchmarkFigure5d_BArho40(b *testing.B) { figGraphs(); benchFigure(b, baDense) }

// --- parallel scheduler -------------------------------------------------------

// withProcs raises GOMAXPROCS to workers for one benchmark, so the wN
// variants are not silently clamped (and thus mislabeled) on machines
// with fewer cores.
func withProcs(b *testing.B, workers int) {
	b.Helper()
	if old := runtime.GOMAXPROCS(0); old < workers {
		runtime.GOMAXPROCS(workers)
		b.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// runCountParallel is runCount on the parallel driver.
func runCountParallel(b *testing.B, g *hbbmc.Graph, opts hbbmc.Options, workers int) {
	b.Helper()
	withProcs(b, workers)
	b.ReportAllocs()
	var cliques int64
	for i := 0; i < b.N; i++ {
		n, _, err := hbbmc.CountParallel(g, opts, workers)
		if err != nil {
			b.Fatal(err)
		}
		cliques = n
	}
	b.ReportMetric(float64(cliques), "cliques")
}

// BenchmarkParallelScaling sweeps worker counts over the skewed stand-in
// graphs; compare w1 (sequential fallback) against w2..w8 for the
// scheduler's speedup.
func BenchmarkParallelScaling(b *testing.B) {
	for _, ds := range []string{"NA", "WE"} {
		g := benchGraph(b, ds)
		for _, cfg := range []struct {
			name string
			opts hbbmc.Options
		}{
			{"HBBMCpp", hbbmc.Options{Algorithm: hbbmc.HBBMC, ET: 3, GR: true}},
			{"RDegen", hbbmc.Options{Algorithm: hbbmc.BKDegen, GR: true}},
		} {
			for _, w := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/w%d", ds, cfg.name, w), func(b *testing.B) {
					runCountParallel(b, g, cfg.opts, w)
				})
			}
		}
	}
}

// BenchmarkParallelDeepSwitch exercises the newly parallel SwitchDepth > 1
// hybrid, which previously fell back to the sequential driver.
func BenchmarkParallelDeepSwitch(b *testing.B) {
	g := benchGraph(b, "NA")
	opts := hbbmc.Options{Algorithm: hbbmc.HBBMC, SwitchDepth: 2, ET: 3, GR: true}
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) { runCountParallel(b, g, opts, w) })
	}
}

// BenchmarkParallelEmitBatch measures the emit path under contention: a
// live callback at 8 workers with per-clique locking (batch=1) vs the
// default batched flushing.
func BenchmarkParallelEmitBatch(b *testing.B) {
	g := benchGraph(b, "NA")
	for _, batch := range []int{1, 256} {
		opts := hbbmc.Options{Algorithm: hbbmc.HBBMC, ET: 3, GR: true, EmitBatchSize: batch}
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			withProcs(b, 8)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var n int64
				if _, err := hbbmc.EnumerateParallel(g, opts, 8, func([]int32) { n++ }); err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("no cliques emitted")
				}
			}
		})
	}
}

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkSubstrateProfile(b *testing.B) {
	g := benchGraph(b, "YO")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = hbbmc.ProfileGraph(g)
	}
}

func BenchmarkSubstrateMoonMoser(b *testing.B) {
	g := hbbmc.GenerateMoonMoser(9) // 3^9 = 19683 maximal cliques
	runCount(b, g, hbbmc.DefaultOptions())
}
