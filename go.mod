module github.com/graphmining/hbbmc

go 1.23
