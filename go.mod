module github.com/graphmining/hbbmc

go 1.24

tool github.com/graphmining/hbbmc/cmd/mcelint
